/// \file csuros.h
/// \brief Csűrös' floating-point counter [Csu10] — the prior-art algorithm
/// the paper says its Figure-1 "simplified algorithm" resembles.
///
/// State is a single integer s, read as a d-bit mantissa m = s mod 2^d and
/// an exponent e = floor(s / 2^d). Each increment bumps s with probability
/// 2^{-e}; the estimate is `(2^d + m) 2^e - 2^d`, which is exactly unbiased
/// (Csűrös 2010, Theorem 1 — also re-verified empirically in our tests).
///
/// Like the sampling counter it spends log(1/ε)-type bits on the mantissa
/// and log log N on the exponent; unlike Algorithm 1 it has no δ schedule.

#ifndef COUNTLIB_BASELINES_CSUROS_H_
#define COUNTLIB_BASELINES_CSUROS_H_

#include <cstdint>
#include <string>

#include "core/counter.h"
#include "core/params.h"
#include "random/rng.h"
#include "util/status.h"

namespace countlib {

/// \brief Parameters of the floating-point counter.
struct CsurosParams {
  /// Mantissa width d (bits); acceptance probability is 2^{-e}.
  uint32_t mantissa_bits = 8;
  /// Cap on the exponent e (provisioning).
  uint32_t exponent_cap = 31;

  /// Total provisioned bits for s in [0, (exponent_cap+1) 2^d).
  int TotalBits() const;

  std::string ToString() const;
};

/// \brief The [Csu10] floating-point counter.
class CsurosCounter : public Counter {
 public:
  static Result<CsurosCounter> Make(const CsurosParams& params, uint64_t seed);

  /// Derives the mantissa width from an accuracy target: the estimator's
  /// relative variance is ~ 1/2^{d+1}, so Chebyshev needs
  /// d = ceil(log2(1/(2 ε² δ))).
  static Result<CsurosCounter> FromAccuracy(const Accuracy& acc, uint64_t seed);

  void Increment() override;
  void IncrementMany(uint64_t n) override;
  double Estimate() const override;
  int StateBits() const override { return params_.TotalBits(); }
  int CurrentStateBits() const override;
  void Reset() override { s_ = 0; saturated_ = false; }
  std::string Name() const override { return params_.ToString(); }
  Status SerializeState(BitWriter* out) const override;
  Status DeserializeState(BitReader* in) override;

  uint64_t s() const { return s_; }
  uint32_t exponent() const {
    return static_cast<uint32_t>(s_ >> params_.mantissa_bits);
  }
  uint64_t mantissa() const {
    return s_ & ((uint64_t{1} << params_.mantissa_bits) - 1);
  }
  bool saturated() const { return saturated_; }

  const CsurosParams& params() const { return params_; }

 private:
  CsurosCounter(const CsurosParams& params, uint64_t seed)
      : params_(params), rng_(seed) {}

  CsurosParams params_;
  Rng rng_;
  uint64_t s_ = 0;
  bool saturated_ = false;
};

}  // namespace countlib

#endif  // COUNTLIB_BASELINES_CSUROS_H_
