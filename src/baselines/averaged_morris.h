/// \file averaged_morris.h
/// \brief Flajolet's averaging approach: k independent Morris(a) counters,
/// estimate = mean of the k estimators.
///
/// Section 1.1 of the paper contrasts two routes to accuracy ε from
/// Morris(1): average Θ(1/ε²) independent copies, or shrink the base
/// parameter a. The variance bound of [Fla85] makes them look "similar",
/// but computationally they are not: averaging multiplies the *space* by
/// 1/ε² (each copy keeps its own X register), while changing base only adds
/// O(log(1/ε)) bits. This class implements the averaging route so the
/// `bench/averaging_vs_base` experiment can demonstrate the gap.

#ifndef COUNTLIB_BASELINES_AVERAGED_MORRIS_H_
#define COUNTLIB_BASELINES_AVERAGED_MORRIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/counter.h"
#include "core/morris.h"
#include "core/params.h"
#include "util/status.h"

namespace countlib {

/// \brief Mean of k independent Morris(a) counters.
class AveragedMorrisCounter : public Counter {
 public:
  /// Builds `copies >= 1` independent Morris counters with shared params.
  static Result<AveragedMorrisCounter> Make(const MorrisParams& params,
                                            uint64_t copies, uint64_t seed);

  /// Accuracy-driven: keep a = 1 (the classic Morris Counter) and average
  /// k = ceil(a / (2 ε² δ)) copies (Chebyshev on the averaged variance
  /// a N(N-1) / (2k)).
  static Result<AveragedMorrisCounter> FromAccuracy(const Accuracy& acc,
                                                    uint64_t seed);

  void Increment() override;
  void IncrementMany(uint64_t n) override;
  double Estimate() const override;
  int StateBits() const override;
  int CurrentStateBits() const override;
  void Reset() override;
  std::string Name() const override;
  Status SerializeState(BitWriter* out) const override;
  Status DeserializeState(BitReader* in) override;

  uint64_t copies() const { return counters_.size(); }
  const MorrisCounter& counter(size_t i) const { return counters_[i]; }

 private:
  explicit AveragedMorrisCounter(std::vector<MorrisCounter> counters)
      : counters_(std::move(counters)) {}

  std::vector<MorrisCounter> counters_;
};

}  // namespace countlib

#endif  // COUNTLIB_BASELINES_AVERAGED_MORRIS_H_
