/// \file merge.cc
/// \brief MERGE: Remark 2.4 — merging loses nothing.
///
/// For each mergeable counter type, split N into N1 + N2, count on two
/// independent counters, merge, and compare the merged state law against a
/// direct counter over N (chi-square homogeneity p-value) plus accuracy of
/// multi-way (tree) merges.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/merge.h"
#include "stats/error_metrics.h"
#include "stats/hypothesis.h"
#include "stats/summary.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("merge: Remark 2.4 distributional equivalence + accuracy");
  flags.AddUint64("trials", 6000, "trials per distribution comparison");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t trials = flags.GetUint64("trials");

  std::printf("# MERGE: merged-vs-direct state law (chi-square p), split "
              "30%%/70%%\n");
  TableWriter table(&std::cout, {"algorithm", "n_total", "chi2", "dof",
                                 "p_value", "verdict"});

  {  // Morris.
    MorrisParams params;
    params.a = 0.25;
    params.x_cap = 512;
    const uint64_t n1 = 3000, n2 = 7000;
    std::vector<uint64_t> merged_hist(80, 0), direct_hist(80, 0);
    Rng seeder(1);
    for (uint64_t tr = 0; tr < trials; ++tr) {
      auto a = MorrisCounter::Make(params, seeder.NextU64()).ValueOrDie();
      auto b = MorrisCounter::Make(params, seeder.NextU64()).ValueOrDie();
      a.IncrementMany(n1);
      b.IncrementMany(n2);
      ++merged_hist[std::min<uint64_t>(Merge(a, b).ValueOrDie().x(), 79)];
      auto d = MorrisCounter::Make(params, seeder.NextU64()).ValueOrDie();
      d.IncrementMany(n1 + n2);
      ++direct_hist[std::min<uint64_t>(d.x(), 79)];
    }
    auto r = stats::ChiSquareTwoSample(merged_hist, direct_hist).ValueOrDie();
    table.BeginRow() << "morris(a=0.25)" << (n1 + n2) << r.statistic << r.dof
                     << r.p_value << (r.p_value > 1e-3 ? "match" : "MISMATCH");
    COUNTLIB_CHECK_OK(table.EndRow());
  }

  {  // Sampling counter.
    SamplingCounterParams params;
    params.budget = 64;
    params.t_cap = 16;
    const uint64_t n1 = 2000, n2 = 6000;
    std::vector<uint64_t> merged_hist(64, 0), direct_hist(64, 0);
    Rng seeder(2);
    for (uint64_t tr = 0; tr < trials; ++tr) {
      auto a = SamplingCounter::Make(params, seeder.NextU64()).ValueOrDie();
      auto b = SamplingCounter::Make(params, seeder.NextU64()).ValueOrDie();
      a.IncrementMany(n1);
      b.IncrementMany(n2);
      ++merged_hist[Merge(a, b).ValueOrDie().y()];
      auto d = SamplingCounter::Make(params, seeder.NextU64()).ValueOrDie();
      d.IncrementMany(n1 + n2);
      ++direct_hist[d.y()];
    }
    auto r = stats::ChiSquareTwoSample(merged_hist, direct_hist).ValueOrDie();
    table.BeginRow() << "sampling(B=64)" << (n1 + n2) << r.statistic << r.dof
                     << r.p_value << (r.p_value > 1e-3 ? "match" : "MISMATCH");
    COUNTLIB_CHECK_OK(table.EndRow());
  }

  {  // Nelson-Yu. The final level is nearly deterministic (that is the
     // algorithm's concentration), so the comparison uses a KS test on the
     // joint state X * 2^40 + Y instead of a level histogram.
    NelsonYuParams params;
    params.epsilon = 0.25;
    params.delta_log2 = 6;
    params.c = 16.0;
    params.x_cap = 2048;
    params.y_cap = uint64_t{1} << 32;
    params.t_cap = 40;
    const uint64_t n1 = 30000, n2 = 70000;
    std::vector<double> merged_joint, direct_joint;
    Rng seeder(3);
    const uint64_t ny_trials = trials / 3;
    auto encode = [](const NelsonYuCounter& c) {
      return static_cast<double>(c.x()) * 0x1p40 + static_cast<double>(c.y());
    };
    for (uint64_t tr = 0; tr < ny_trials; ++tr) {
      auto a = NelsonYuCounter::Make(params, seeder.NextU64()).ValueOrDie();
      auto b = NelsonYuCounter::Make(params, seeder.NextU64()).ValueOrDie();
      a.IncrementMany(n1);
      b.IncrementMany(n2);
      merged_joint.push_back(encode(Merge(a, b).ValueOrDie()));
      auto d = NelsonYuCounter::Make(params, seeder.NextU64()).ValueOrDie();
      d.IncrementMany(n1 + n2);
      direct_joint.push_back(encode(d));
    }
    auto r =
        stats::KolmogorovSmirnovTwoSample(merged_joint, direct_joint).ValueOrDie();
    table.BeginRow() << "nelson-yu(eps=0.25) [KS]" << (n1 + n2) << r.statistic
                     << r.dof << r.p_value
                     << (r.p_value > 1e-3 ? "match" : "MISMATCH");
    COUNTLIB_CHECK_OK(table.EndRow());
  }

  // Tree merge of 8 shards: accuracy of the aggregate.
  std::printf("\n# MERGE: 8-way tree merge accuracy (Nelson-Yu)\n");
  {
    Accuracy acc{0.2, 0.02, uint64_t{1} << 24};
    TableWriter tree_table(&std::cout,
                           {"total_n", "mean_rel_err", "max_rel_err"});
    Rng seeder(4);
    for (uint64_t total : {80000ull, 800000ull}) {
      stats::StreamingSummary errs;
      for (int rep = 0; rep < 20; ++rep) {
        std::vector<NelsonYuCounter> shards;
        for (int s = 0; s < 8; ++s) {
          auto c = NelsonYuCounter::FromAccuracy(acc, seeder.NextU64()).ValueOrDie();
          c.IncrementMany(total / 8);
          shards.push_back(std::move(c));
        }
        while (shards.size() > 1) {
          std::vector<NelsonYuCounter> next;
          for (size_t i = 0; i + 1 < shards.size(); i += 2) {
            next.push_back(Merge(shards[i], shards[i + 1]).ValueOrDie());
          }
          shards = std::move(next);
        }
        errs.Add(stats::RelativeError(shards[0].Estimate(),
                                      static_cast<double>(total)));
      }
      tree_table.BeginRow() << total << errs.mean() << errs.max();
      COUNTLIB_CHECK_OK(tree_table.EndRow());
    }
  }
  std::printf("# paper: merged counters follow the same distribution as a "
              "single counter over the union — nothing lost in (eps, delta)\n");
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
