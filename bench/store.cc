/// \file store.cc
/// \brief STORE: the paper's §1 motivation — M counters, bits per counter.
///
/// Drives a Zipf page-visit trace into bit-packed counter stores at several
/// per-key bit budgets and algorithms, reporting bits/key and accuracy
/// against the exact per-key truth, versus the naive 64-bit-per-key
/// baseline. Also demonstrates the δ ≪ 1/M sizing rule: with M keys and
/// per-counter failure δ = 0.1/M, the measured count of keys outside the
/// ε-band should be ~0.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analytics/counter_store.h"
#include "stats/error_metrics.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("store: multi-counter analytics footprint vs accuracy");
  flags.AddUint64("keys", 20000, "distinct keys");
  flags.AddUint64("increments", 4000000, "total increments in the trace");
  flags.AddDouble("skew", 1.0, "Zipf skew");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t keys = flags.GetUint64("keys");
  const uint64_t increments = flags.GetUint64("increments");

  auto trace = stream::Trace::GenerateBursty(keys, flags.GetDouble("skew"), 64.0,
                                             increments, 4242)
                   .ValueOrDie();
  const auto truth = trace.ExactCounts();
  std::printf("# STORE: %llu keys, %llu increments, Zipf skew %.2f\n",
              static_cast<unsigned long long>(truth.size()),
              static_cast<unsigned long long>(increments),
              flags.GetDouble("skew"));

  TableWriter table(&std::cout,
                    {"algorithm", "bits_per_key", "total_state_kib",
                     "median_rel_err_big_keys", "q99_rel_err_big_keys",
                     "keys_outside_20pct"});

  struct Config {
    CounterKind kind;
    int bits;
  };
  const Config configs[] = {
      {CounterKind::kExact, 24},   {CounterKind::kSampling, 12},
      {CounterKind::kSampling, 16}, {CounterKind::kSampling, 20},
      {CounterKind::kMorris, 16},  {CounterKind::kCsuros, 16},
  };
  for (const Config& config : configs) {
    auto store = analytics::CounterStore::MakeWithBitBudget(
                     config.kind, config.bits, increments, 7)
                     .ValueOrDie();
    for (const auto& event : trace.events()) {
      COUNTLIB_CHECK_OK(store.Increment(event.key, event.weight));
    }
    std::vector<double> big_errs;
    uint64_t outside = 0;
    for (const auto& [key, count] : truth) {
      const double est = store.Estimate(key).ValueOrDie();
      const double rel = stats::RelativeError(est, static_cast<double>(count));
      if (count >= 1000) big_errs.push_back(rel);
      if (rel > 0.2 && count >= 32) ++outside;
    }
    std::sort(big_errs.begin(), big_errs.end());
    const double median =
        big_errs.empty() ? 0 : big_errs[big_errs.size() / 2];
    const double q99 =
        big_errs.empty()
            ? 0
            : big_errs[static_cast<size_t>(0.99 * (big_errs.size() - 1))];
    table.BeginRow() << store.AlgorithmName() << store.bits_per_key()
                     << static_cast<double>(store.TotalStateBits()) / 8192.0
                     << median << q99 << outside;
    COUNTLIB_CHECK_OK(table.EndRow());
  }
  std::printf("# baseline: naive uint64 counters cost 64 bits/key = %.1f KiB "
              "of state for this key set\n",
              64.0 * static_cast<double>(truth.size()) / 8192.0);
  std::printf("# paper: approximate counters cut per-key state by 3-5x at "
              "sub-20%% error on all heavy keys\n");
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
