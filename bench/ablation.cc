/// \file ablation.cc
/// \brief Ablations of the design choices DESIGN.md calls out:
///
///  1. **Algorithm 1's constant C** (line 10): sweep C and measure failure
///     rate and Y-register bits. Too small a C breaks the per-epoch
///     Chernoff bound; larger C buys reliability linearly in bits.
///  2. **Power-of-two α rounding** (Remark 2.2): rounding α *up* to 2^-t
///     at most doubles the survivor budget; the measured accuracy is
///     unchanged, confirming the Remark's claim that correctness only
///     needs α at least the line-10 value.
///  3. **Morris+ prefix size** (Appendix A): sweep the switchover r in
///     N_a = r/a. Appendix A proves r ~ 8 is necessary-ish (r ≪ ε^{4/3}
///     fails) and that the bit cost of larger r is mild (the "factor of
///     three" remark). We measure the exact failure probability at the
///     adversarial count for each r, and the prefix bits.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/morris_plus.h"
#include "core/nelson_yu.h"
#include "sim/morris_exact_dist.h"
#include "stats/bounds.h"
#include "stats/error_metrics.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/math.h"

namespace countlib {
namespace {

void AblateC(uint64_t trials) {
  std::printf("# ABLATION 1: Algorithm 1's constant C (eps=0.2, delta=2^-7, "
              "n=200000, %llu trials)\n",
              static_cast<unsigned long long>(trials));
  TableWriter table(&std::cout, {"C", "y_register_bits", "failure_rate",
                                 "mean_rel_err"});
  const uint64_t n = 200000;
  for (double c : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    NelsonYuParams params;
    params.epsilon = 0.2;
    params.delta_log2 = 7;
    params.c = c;
    params.x_cap = 4096;
    params.y_cap = uint64_t{1} << 32;
    params.t_cap = 40;
    uint64_t failures = 0;
    double err_sum = 0;
    Rng seeder(1234);
    for (uint64_t tr = 0; tr < trials; ++tr) {
      auto counter = NelsonYuCounter::Make(params, seeder.NextU64()).ValueOrDie();
      counter.IncrementMany(n);
      const double rel =
          stats::RelativeError(counter.Estimate(), static_cast<double>(n));
      err_sum += rel;
      // The conditioned Theorem-2.1 bound is ~1.5 eps; count excursions
      // beyond 2 eps as failures.
      if (rel > 2.0 * params.epsilon) ++failures;
    }
    auto probe = NelsonYuCounter::Make(params, 1).ValueOrDie();
    table.BeginRow() << c << probe.params().YBits()
                     << static_cast<double>(failures) / static_cast<double>(trials)
                     << err_sum / static_cast<double>(trials);
    COUNTLIB_CHECK_OK(table.EndRow());
  }
  std::printf("# expected: failure rate collapses once C is a small constant; "
              "Y bits grow only logarithmically in C\n\n");
}

void AblatePrefix() {
  std::printf("# ABLATION 3: Morris+ prefix switchover N_a = r/a "
              "(eps=0.1, delta=1e-9)\n");
  // Exact failure probability of querying at the Appendix-A adversarial
  // count when the prefix only covers r/a for various r. If N'_a > prefix,
  // the query falls through to the (still unmixed) Morris estimator.
  const double eps = 0.1;
  const double delta = 1e-9;
  const double a = eps * eps / (8.0 * std::log(1.0 / delta));
  const auto bound = stats::AppendixAEventBound(a, eps, 1.0 / 256.0);
  const uint64_t n_adv = std::max<uint64_t>(2, bound.n);

  TableWriter table(&std::cout,
                    {"r", "prefix_limit", "prefix_bits", "covers_N_adv",
                     "exact_failure_at_N_adv", "failure_over_delta"});
  auto dp = sim::MorrisExactDistribution::Make(a, n_adv + 2).ValueOrDie();
  dp.Step(n_adv);
  const double vanilla_failure = dp.FailureProbability(eps);
  for (double r : {0.0, 0.0001, 0.001, 0.01, 0.1, 1.0, 8.0, 64.0}) {
    const uint64_t prefix =
        r == 0.0 ? 0 : static_cast<uint64_t>(std::ceil(r / a));
    const bool covers = prefix >= n_adv;
    // If covered, the query is answered exactly: failure 0. Otherwise the
    // Morris estimator answers and the exact DP failure applies.
    const double failure = covers ? 0.0 : vanilla_failure;
    table.BeginRow() << r << prefix << (prefix == 0 ? 0 : BitWidth(prefix + 1))
                     << (covers ? "yes" : "no") << failure << failure / delta;
    COUNTLIB_CHECK_OK(table.EndRow());
  }
  std::printf("# expected: r below ~c eps^{4/3} leaves the adversarial count "
              "uncovered and the failure probability >> delta; the paper's "
              "r = 8 covers it at a cost of a few prefix bits (the 'factor "
              "of three' remark)\n\n");
}

void AblateAlphaRounding(uint64_t trials) {
  std::printf("# ABLATION 2: power-of-two alpha rounding (Remark 2.2) — "
              "accuracy of the rounded schedule vs the predicted 2x survivor "
              "overhead (%llu trials)\n",
              static_cast<unsigned long long>(trials));
  // The implementation always rounds (that *is* Remark 2.2); this ablation
  // quantifies its cost: the threshold floor(alpha T) with rounded alpha is
  // at most 2x the unrounded C ln(1/eta)/eps^3, so the Y register pays at
  // most one extra bit. We report the realized threshold-to-raw ratio along
  // the schedule plus end-to-end accuracy.
  NelsonYuParams params;
  params.epsilon = 0.2;
  params.delta_log2 = 7;
  params.c = 16.0;
  params.x_cap = 4096;
  params.y_cap = uint64_t{1} << 32;
  params.t_cap = 40;
  auto probe = NelsonYuCounter::Make(params, 1).ValueOrDie();
  TableWriter table(&std::cout,
                    {"level_above_x0", "threshold", "raw_alphaT", "ratio"});
  const double eps3 = params.epsilon * params.epsilon * params.epsilon;
  for (uint64_t dx : {1ull, 5ull, 10ull, 20ull, 40ull}) {
    const uint64_t x = probe.X0() + dx;
    auto sched = probe.ScheduleAt(x);
    const double big_t = std::ceil(Pow1p(params.epsilon, static_cast<double>(x)));
    const double ln_inv_eta = params.delta_log2 * std::log(2.0) +
                              2.0 * std::log(static_cast<double>(x));
    const double raw = std::min(big_t, params.c * ln_inv_eta / eps3);
    table.BeginRow() << dx << sched.threshold << raw
                     << static_cast<double>(sched.threshold) / raw;
    COUNTLIB_CHECK_OK(table.EndRow());
  }
  // End-to-end accuracy with the rounded schedule.
  uint64_t failures = 0;
  Rng seeder(99);
  const uint64_t n = 150000;
  for (uint64_t tr = 0; tr < trials; ++tr) {
    auto counter = NelsonYuCounter::Make(params, seeder.NextU64()).ValueOrDie();
    counter.IncrementMany(n);
    if (stats::RelativeError(counter.Estimate(), static_cast<double>(n)) >
        2.0 * params.epsilon) {
      ++failures;
    }
  }
  std::printf("# rounded-schedule failure rate at n=%llu: %g (target "
              "delta=%g); ratio column stays in [0.5, 2] as Remark 2.2 "
              "predicts\n\n",
              static_cast<unsigned long long>(n),
              static_cast<double>(failures) / static_cast<double>(trials),
              std::exp2(-static_cast<double>(params.delta_log2)));
}

int Main(int argc, const char* const* argv) {
  FlagParser flags("ablation: C sweep, alpha rounding, Morris+ prefix size");
  flags.AddUint64("trials", 400, "Monte-Carlo trials per cell");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t trials = flags.GetUint64("trials");
  AblateC(trials);
  AblateAlphaRounding(trials);
  AblatePrefix();
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
