/// \file applications.cc
/// \brief APPS: the §1 application suite exercised end-to-end —
/// F_p moments, heavy hitters, reservoir sampling, inversion counting —
/// each with approximate counters as the counting substrate vs an exact
/// baseline.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "apps/frequency_moments.h"
#include "apps/heavy_hitters.h"
#include "apps/inversions.h"
#include "apps/reservoir.h"
#include "random/distributions.h"
#include "stats/error_metrics.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("applications: Fp moments / heavy hitters / reservoir / "
                   "inversions on approximate counters");
  flags.AddUint64("stream", 50000, "stream length per application");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t stream_len = flags.GetUint64("stream");
  // Provision counters for counts up to 2^40: the regime where the
  // log n vs log log n separation shows (exact register: 41 bits).
  const Accuracy counter_acc{0.1, 0.01, uint64_t{1} << 40};

  TableWriter table(&std::cout,
                    {"application", "counter_backend", "truth", "estimate",
                     "rel_error", "counter_state_bits"});

  // --- F_p moments (p = 0.5), Zipf stream ---
  {
    auto zipf = ZipfDistribution::Make(256, 1.1).ValueOrDie();
    std::vector<uint64_t> items(stream_len);
    Rng rng(10);
    std::unordered_map<uint64_t, uint64_t> freq;
    for (auto& item : items) {
      item = zipf.Sample(&rng);
      ++freq[item];
    }
    const double truth = apps::ExactFp(freq, 0.5);
    for (CounterKind kind : {CounterKind::kExact, CounterKind::kSampling,
                             CounterKind::kMorrisPlus}) {
      auto est = apps::FpMomentEstimator::Make(0.5, 400, kind, counter_acc, 21)
                     .ValueOrDie();
      for (uint64_t item : items) COUNTLIB_CHECK_OK(est.Add(item));
      const double got = est.Estimate().ValueOrDie();
      table.BeginRow() << "F_0.5" << CounterKindToString(kind) << truth << got
                       << stats::RelativeError(got, truth)
                       << est.CounterStateBits();
      COUNTLIB_CHECK_OK(table.EndRow());
    }
  }

  // --- Heavy hitters, Zipf stream ---
  {
    auto zipf = ZipfDistribution::Make(10000, 1.2).ValueOrDie();
    Rng rng(11);
    std::unordered_map<uint64_t, uint64_t> freq;
    std::vector<uint64_t> items(stream_len * 2);
    for (auto& item : items) {
      item = zipf.Sample(&rng);
      ++freq[item];
    }
    // Truth: the most frequent key and its count.
    uint64_t top_item = 0, top_count = 0;
    for (const auto& [item, count] : freq) {
      if (count > top_count) {
        top_count = count;
        top_item = item;
      }
    }
    for (CounterKind kind : {CounterKind::kExact, CounterKind::kSampling}) {
      auto sketch =
          apps::HeavyHitterSketch::Make(128, kind, counter_acc, 23).ValueOrDie();
      for (uint64_t item : items) COUNTLIB_CHECK_OK(sketch.Add(item));
      auto top = sketch.TopK(1);
      const double got =
          (!top.empty() && top[0].item == top_item) ? top[0].estimated_count : 0;
      table.BeginRow() << "heavy_hitter_top1" << CounterKindToString(kind)
                       << static_cast<double>(top_count) << got
                       << stats::RelativeError(std::max(got, 1.0),
                                               static_cast<double>(top_count))
                       << sketch.CounterStateBits();
      COUNTLIB_CHECK_OK(table.EndRow());
    }
  }

  // --- Reservoir sampling: first-half inclusion fraction (truth 0.5) ---
  {
    for (CounterKind kind : {CounterKind::kExact, CounterKind::kSampling}) {
      double first_half = 0, total = 0;
      Rng seeder(12);
      for (int rep = 0; rep < 300; ++rep) {
        auto reservoir = apps::ApproximateReservoir::Make(
                             16, kind, counter_acc, seeder.NextU64())
                             .ValueOrDie();
        for (uint64_t i = 0; i < stream_len; ++i) reservoir.Add(i);
        for (uint64_t item : reservoir.sample()) {
          total += 1;
          if (item < stream_len / 2) first_half += 1;
        }
      }
      const double got = first_half / total;
      auto probe =
          apps::ApproximateReservoir::Make(16, kind, counter_acc, 1).ValueOrDie();
      table.BeginRow() << "reservoir_first_half_frac" << CounterKindToString(kind)
                       << 0.5 << got << stats::RelativeError(got, 0.5)
                       << probe.LengthStateBits();
      COUNTLIB_CHECK_OK(table.EndRow());
    }
  }

  // --- Inversions over a random permutation ---
  {
    Rng rng(13);
    std::vector<uint64_t> perm(stream_len / 5);
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);
    const double truth = static_cast<double>(apps::ExactInversions(perm));
    for (CounterKind kind : {CounterKind::kExact, CounterKind::kSampling}) {
      auto est =
          apps::InversionEstimator::Make(0.08, kind, counter_acc, 31).ValueOrDie();
      for (uint64_t v : perm) est.Add(v);
      const double got = est.Estimate();
      table.BeginRow() << "inversions" << CounterKindToString(kind) << truth
                       << got << stats::RelativeError(got, truth)
                       << est.CounterStateBits();
      COUNTLIB_CHECK_OK(table.EndRow());
    }
  }

  std::printf("# paper (§1): approximate counters slot into moment "
              "estimation, heavy hitters, reservoir sampling and inversion "
              "counting with small error and far fewer state bits\n");
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
