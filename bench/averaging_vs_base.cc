/// \file averaging_vs_base.cc
/// \brief SEC11: averaging copies vs changing the base (§1.1).
///
/// [Fla85] suggested the two routes to better accuracy have "an effect
/// similar to" each other; the paper's §1.1 observes they are *not*
/// similar computationally: averaging k = Θ(1/(ε²δ)) copies of Morris(1)
/// multiplies space by k, while changing the base to a = Θ(ε²/log(1/δ))
/// adds only O(log(1/ε) + log log(1/δ)) bits. This bench measures both at
/// equal empirical accuracy.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/counter_factory.h"
#include "core/params.h"
#include "stats/error_metrics.h"
#include "stream/stream_runner.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("averaging_vs_base: the Section-1.1 space comparison");
  flags.AddUint64("trials", 500, "Monte-Carlo trials per row");
  flags.AddUint64("n", 1u << 18, "count per trial");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t trials = flags.GetUint64("trials");
  const uint64_t n = flags.GetUint64("n");

  std::printf("# SEC11: equal-(eps,delta) space, averaging vs base change "
              "(n=%llu, %llu trials)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(trials));
  TableWriter table(&std::cout,
                    {"epsilon", "delta", "algorithm", "state_bits",
                     "observed_failure_rate", "observed_q90_rel_err"});
  for (double eps : {0.3, 0.15}) {
    for (double delta : {0.1, 0.02}) {
      Accuracy acc{eps, delta, n * 2};
      for (CounterKind kind :
           {CounterKind::kAveragedMorris, CounterKind::kMorrisPlus}) {
        auto probe = MakeCounter(kind, acc, 1).ValueOrDie();
        auto report =
            stream::RunAccuracyTrials(kind, acc, n, trials, 0xABBA).ValueOrDie();
        std::vector<double> sorted = report.relative_errors;
        std::sort(sorted.begin(), sorted.end());
        table.BeginRow() << eps << delta << CounterKindToString(kind)
                         << probe->StateBits()
                         << stats::FailureRate(report.relative_errors, eps)
                         << sorted[static_cast<size_t>(0.9 * (sorted.size() - 1))];
        COUNTLIB_CHECK_OK(table.EndRow());
      }
    }
  }
  std::printf("# paper: both meet the (eps, delta) target, but the averaging "
              "column pays ~1/(2 eps^2 delta) * log log n bits vs the base "
              "change's log log n + log 1/eps + log log 1/delta\n");
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
