/// \file entropy.cc
/// \brief Random bits consumed per logical increment — the other resource
/// in Remark 2.2's model (the fair coin flips behind Bernoulli(2^-t)).
///
/// The Nelson-Yu counter's per-increment entropy cost is t coins (free in
/// epoch 0, growing like log2(n / survivor-budget) later); the ledger here
/// measures it empirically, alongside the counters' state bits, showing
/// the space/entropy trade: optimal state costs a only-logarithmically
/// growing number of coins per event.

#include <cstdio>
#include <iostream>

#include "core/nelson_yu.h"
#include "core/params.h"
#include "random/bernoulli.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("entropy: fair-coin bits consumed per increment");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }

  std::printf("# entropy ledger: Nelson-Yu (eps=0.2, delta=0.01) — coins per "
              "increment by stream position\n");
  Accuracy acc{0.2, 0.01, uint64_t{1} << 26};
  auto counter = NelsonYuCounter::FromAccuracy(acc, 2022).ValueOrDie();
  TableWriter table(&std::cout, {"n", "t", "total_coin_bits",
                                 "coins_per_increment_in_window"});
  uint64_t prev_coins = 0;
  uint64_t prev_n = 0;
  for (uint64_t n : {1000ull, 10000ull, 100000ull, 1000000ull, 10000000ull}) {
    // Per-increment path so the ledger reflects the Remark 2.2 scheme.
    for (uint64_t i = prev_n; i < n; ++i) counter.Increment();
    const uint64_t coins = counter.random_bits_consumed();
    table.BeginRow() << n << counter.t() << coins
                     << static_cast<double>(coins - prev_coins) /
                            static_cast<double>(n - prev_n);
    COUNTLIB_CHECK_OK(table.EndRow());
    prev_coins = coins;
    prev_n = n;
  }
  std::printf("# epoch 0 is free (alpha = 1); afterwards each increment "
              "costs t = log2(1/alpha) coins, growing ~log2(n) — and the "
              "scratch for the coin-ANDing is only 1 + ceil(log2(t+1)) = %d "
              "bits at the final t\n",
              BernoulliScratchBits(counter.t()));
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
