/// \file delta_scaling.cc
/// \brief THM21 + the log(1/δ) vs log log(1/δ) separation, measured.
///
/// Two tables:
///  1. Correctness (Theorem 2.1 / 1.2): measured failure rate of
///     P(|N-hat - N| > εN) vs the target δ, with 99% Wilson upper bounds —
///     every row must satisfy wilson_lo <= delta.
///  2. The δ-dependence separation: bits needed as δ shrinks from 1e-2 to
///     1e-12 for (a) the paper's algorithms (doubly-log) and (b) the
///     Chebyshev-parameterized Morris a = 2ε²δ of §1.2 (singly-log).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/counter_factory.h"
#include "core/params.h"
#include "sim/nelson_yu_exact_dist.h"
#include "stats/error_metrics.h"
#include "stream/stream_runner.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/math.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("delta_scaling: failure rates vs delta; bits vs delta");
  flags.AddUint64("trials", 2000, "Monte-Carlo trials per failure-rate row");
  flags.AddUint64("n", 1u << 20, "count per trial");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t trials = flags.GetUint64("trials");
  const uint64_t n = flags.GetUint64("n");

  std::printf("# THM21: measured failure rate vs target delta (n=%llu)\n",
              static_cast<unsigned long long>(n));
  {
    TableWriter table(&std::cout,
                      {"algorithm", "epsilon", "delta", "trials", "failures",
                       "failure_rate", "wilson_lo", "wilson_hi", "pass"});
    for (CounterKind kind : {CounterKind::kNelsonYu, CounterKind::kMorrisPlus,
                             CounterKind::kSampling}) {
      for (double delta : {0.05, 0.01, 0.001}) {
        Accuracy acc{0.1, delta, n * 2};
        auto report =
            stream::RunAccuracyTrials(kind, acc, n, trials, 0xFEED).ValueOrDie();
        const uint64_t failures = report.CountFailures(acc.epsilon);
        auto wilson = stats::Wilson(failures, trials);
        table.BeginRow() << CounterKindToString(kind) << acc.epsilon << delta
                         << trials << failures << wilson.point << wilson.lo
                         << wilson.hi
                         << (wilson.lo <= delta ? "yes" : "NO");
        COUNTLIB_CHECK_OK(table.EndRow());
      }
    }
  }

  std::printf("\n# separation: bits vs delta at eps=0.1, n_max=2^30\n");
  {
    TableWriter table(&std::cout,
                      {"delta", "nelson_yu_bits", "morris_plus_bits",
                       "chebyshev_morris_bits", "exact_bits"});
    const uint64_t n_max = uint64_t{1} << 30;
    for (double delta : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12}) {
      Accuracy acc{0.1, delta, n_max};
      auto ny = NelsonYuFromAccuracy(acc).ValueOrDie();
      auto mp = MorrisFromAccuracy(acc, true).ValueOrDie();
      // The §1.2 Chebyshev parameterization: a = 2ε²δ, X register must hold
      // log_{1+a}(K n) levels.
      MorrisParams chebyshev;
      chebyshev.a = 2.0 * acc.epsilon * acc.epsilon * delta;
      chebyshev.x_cap = static_cast<uint64_t>(std::ceil(
                            Log1pBase(chebyshev.a,
                                      16.0 * static_cast<double>(n_max)))) +
                        16;
      table.BeginRow() << delta << ny.TotalBits() << mp.TotalBits()
                       << chebyshev.TotalBits() << BitWidth(n_max);
      COUNTLIB_CHECK_OK(table.EndRow());
    }
  }
  std::printf("# paper: chebyshev column grows ~log2(1/delta) per row; "
              "nelson-yu/morris+ columns grow ~log2 log2(1/delta)\n");

  // Exact (no Monte Carlo) verification of Theorem 2.1 on a small
  // parameterization, via the forward DP over Algorithm 1's state space.
  std::printf("\n# THM21 (exact DP): Algorithm 1 failure probability, "
              "eps_internal=0.5, delta_internal=2^-4\n");
  {
    NelsonYuParams params;
    params.epsilon = 0.5;
    params.delta_log2 = 4;
    params.c = 4.0;
    params.x_cap = 512;
    params.y_cap = uint64_t{1} << 24;
    params.t_cap = 40;
    auto probe = NelsonYuCounter::Make(params, 1).ValueOrDie();
    auto dp = sim::NelsonYuExactDistribution::Make(params, probe.X0() + 40)
                  .ValueOrDie();
    TableWriter table(&std::cout,
                      {"n", "exact_failure_at_2eps", "estimator_mean",
                       "absorbed_mass"});
    uint64_t done = 0;
    for (uint64_t n : {100ull, 1000ull, 10000ull, 100000ull}) {
      dp.Step(n - done);
      done = n;
      table.BeginRow() << n << dp.FailureProbability(2.0 * params.epsilon)
                       << dp.EstimatorMean() << dp.AbsorbedMass();
      COUNTLIB_CHECK_OK(table.EndRow());
    }
    std::printf("# exact failure stays below the union-bound budget at every "
                "n — Theorem 2.1 verified with zero sampling error\n");
  }
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
