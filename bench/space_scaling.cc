/// \file space_scaling.cc
/// \brief THM11/THM12: provisioned and realized space across (n, ε, δ) for
/// every counter, against the paper's bounds.
///
/// Paper-expected shape:
///  * Nelson-Yu and Morris+ bits track
///    log log n + log(1/ε) + log log(1/δ) (Theorems 1.1/1.2);
///  * the exact counter tracks log n;
///  * the Chebyshev-parameterized Morris (pre-paper analysis) pays
///    log(1/δ) instead of log log(1/δ).

#include <cstdio>
#include <iostream>

#include "core/counter_factory.h"
#include "core/params.h"
#include "stream/stream_runner.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/math.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("space_scaling: bits vs (n, eps, delta) per algorithm");
  flags.AddUint64("trials", 64, "trials per configuration (for realized bits)");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t trials = flags.GetUint64("trials");

  std::printf("# THM11/THM12: provisioned state bits vs accuracy targets\n");
  TableWriter table(&std::cout,
                    {"n_max", "epsilon", "delta", "algorithm", "provisioned_bits",
                     "mean_realized_bits", "max_realized_bits", "exact_bits",
                     "optimal_bound", "classical_bound"});

  const uint64_t n_values[] = {uint64_t{1} << 16, uint64_t{1} << 24,
                               uint64_t{1} << 32};
  const double eps_values[] = {0.3, 0.1};
  const double delta_values[] = {1e-2, 1e-6, 1e-12};

  for (uint64_t n_max : n_values) {
    for (double eps : eps_values) {
      for (double delta : delta_values) {
        Accuracy acc{eps, delta, n_max};
        // Realized bits are measured at n = n_max / 2 (inside range).
        const uint64_t n_run = std::min<uint64_t>(n_max / 2, uint64_t{1} << 24);
        for (CounterKind kind :
             {CounterKind::kNelsonYu, CounterKind::kMorrisPlus,
              CounterKind::kSampling, CounterKind::kCsuros}) {
          auto probe = MakeCounter(kind, acc, 1).ValueOrDie();
          auto report = stream::RunAccuracyTrials(kind, acc, n_run, trials, 7)
                            .ValueOrDie();
          table.BeginRow() << n_max << eps << delta << CounterKindToString(kind)
                           << probe->StateBits() << report.state_bits.mean()
                           << report.state_bits.max() << BitWidth(n_max)
                           << OptimalSpaceBound(acc) << ClassicalSpaceBound(acc);
          COUNTLIB_CHECK_OK(table.EndRow());
        }
      }
    }
  }
  std::printf(
      "# paper: optimal algorithms grow ~log log(1/delta); delta 1e-2 -> "
      "1e-12 should cost only a few bits for nelson-yu/morris+\n");
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
