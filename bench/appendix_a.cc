/// \file appendix_a.cc
/// \brief APPA: the Morris+ tweak is necessary (Appendix A).
///
/// For a sweep of δ, derive a = ε²/(8 ln(1/δ)) and the adversarial count
/// N'_a = ceil(c ε^{4/3}/a), then compute *exactly* (forward DP):
///   * the failure probability of vanilla Morris(a) at N'_a, and
///   * the ratio against δ — the paper's claim is that it is >> 1 once
///     δ < ε^{8/3} c²/16, growing as δ shrinks;
/// Morris+ answers from its deterministic prefix there (failure exactly 0).
/// A Monte-Carlo cross-check column is included where MC has power.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "sim/appendix_a.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("appendix_a: vanilla Morris(a) vs Morris+ at N'_a");
  flags.AddDouble("epsilon", 0.1, "epsilon (< 1/4)");
  flags.AddDouble("c", 1.0 / 256.0, "the appendix constant c (<= 2^-8)");
  flags.AddUint64("mc_trials", 100000, "Monte-Carlo cross-check trials");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const double eps = flags.GetDouble("epsilon");
  const double c = flags.GetDouble("c");
  const uint64_t mc_trials = flags.GetUint64("mc_trials");

  std::printf("# APPA: eps=%.3f c=%.6f; threshold for the claim: delta < "
              "eps^{8/3} c^2 / 16 = %.3e\n",
              eps, c, std::pow(eps, 8.0 / 3.0) * c * c / 16.0);
  TableWriter table(&std::cout,
                    {"delta", "a", "N_prime", "prefix_limit_Na",
                     "vanilla_failure_exact", "failure_over_delta",
                     "analytic_event_lb", "plus_failure", "mc_cross_check"});
  for (double delta : {1e-3, 1e-4, 1e-6, 1e-9, 1e-12}) {
    auto row = sim::RunAppendixAExact(eps, delta, c).ValueOrDie();
    double mc = -1.0;
    if (row.vanilla_failure_exact * static_cast<double>(mc_trials) > 20.0) {
      mc = sim::AppendixAVanillaFailureMc(eps, delta, c, mc_trials, 77)
               .ValueOrDie();
    }
    table.BeginRow() << delta << row.a << row.n << row.prefix_limit
                     << row.vanilla_failure_exact << row.ratio_vs_delta
                     << row.analytic_event_prob << row.plus_failure_exact << mc;
    COUNTLIB_CHECK_OK(table.EndRow());
  }
  std::printf("# paper: failure_over_delta >> 1 (and growing) below the "
              "threshold; Morris+ column identically 0 — the deterministic "
              "prefix is necessary, and N_a = 8/a is near-optimal\n");
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
