/// \file lower_bound.cc
/// \brief THM31: the lower bound, exhibited constructively.
///
/// Table 1 — pumping: for each small bit budget S, derandomize (argmax
/// transitions, §3) a Morris and a sampling counter squeezed into S bits
/// and print the witness (N1, N2, N3): the deterministic counter reaches
/// the same state after N1 and N3 >= 4*N1 increments, so it answers
/// identically and is forced into relative error >= 3/5 on one of them.
///
/// Table 2 — the bound itself: Ω(min{log n, log log n + log 1/ε +
/// log log 1/δ}) evaluated across a grid, against the bits our
/// upper-bound implementations actually provision (constant-factor match).

#include <cstdio>
#include <iostream>

#include "sim/lower_bound.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("lower_bound: Section-3 derandomization + bound table");
  flags.AddUint64("n_max", 1u << 20, "count range for counter calibration");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t n_max = flags.GetUint64("n_max");

  std::printf("# THM31 table 1: pumping witnesses for derandomized counters\n");
  {
    TableWriter table(&std::cout,
                      {"kernel", "S_bits", "states", "promise_T", "N1", "N2",
                       "N3", "shared_answer", "forced_rel_error"});
    for (int bits : {4, 6, 8, 10}) {
      auto morris = sim::PumpMorris(bits, n_max, 0);
      if (morris.ok()) {
        const auto& r = *morris;
        table.BeginRow() << "morris" << r.state_bits << r.num_states
                         << r.promise_t << r.witness.n1 << r.witness.n2
                         << r.witness.n3 << r.witness.estimate_small
                         << r.forced_relative_error;
        COUNTLIB_CHECK_OK(table.EndRow());
      }
      auto sampling = sim::PumpSampling(bits, 1u << 14, 0);
      if (sampling.ok()) {
        const auto& r = *sampling;
        table.BeginRow() << "sampling" << r.state_bits << r.num_states
                         << r.promise_t << r.witness.n1 << r.witness.n2
                         << r.witness.n3 << r.witness.estimate_small
                         << r.forced_relative_error;
        COUNTLIB_CHECK_OK(table.EndRow());
      }
    }
  }
  std::printf("# paper: any S-bit counter with 2^S <= sqrt(T) collides within "
              "T/2 counts and must confuse N1 with some N3 in [2T, 4T]\n");

  std::printf("\n# THM31 table 2: bound vs provisioned implementation bits\n");
  {
    std::vector<Accuracy> grid = {
        {0.1, 1e-2, uint64_t{1} << 16}, {0.1, 1e-2, uint64_t{1} << 32},
        {0.1, 1e-6, uint64_t{1} << 32}, {0.1, 1e-12, uint64_t{1} << 32},
        {0.02, 1e-6, uint64_t{1} << 32}, {0.3, 1e-6, uint64_t{1} << 32},
        {0.1, 1e-6, uint64_t{1} << 60},
    };
    auto rows = sim::EvaluateBoundTable(grid).ValueOrDie();
    TableWriter table(&std::cout,
                      {"n_max", "epsilon", "delta", "lower_bound_bits",
                       "optimal_bound_bits", "nelson_yu_bits", "morris_plus_bits",
                       "exact_bits", "classical_bound_bits"});
    for (const auto& row : rows) {
      table.BeginRow() << row.acc.n_max << row.acc.epsilon << row.acc.delta
                       << row.lower_bound_bits << row.optimal_bound_bits
                       << row.nelson_yu_bits << row.morris_plus_bits
                       << row.exact_bits << row.classical_bound_bits;
      COUNTLIB_CHECK_OK(table.EndRow());
    }
  }
  std::printf("# paper: implementations track the optimal bound up to a "
              "constant factor; the lower bound certifies no algorithm can "
              "do asymptotically better\n");
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
