/// \file pipeline_throughput.cc
/// \brief PIPELINE: ingest throughput — direct locked `Increment` vs the
/// async batched pipeline, plus elastic-scaling, idle-CPU, and
/// backpressure-cost scenarios.
///
/// Replays the same Zipf trace through (a) producer threads calling
/// `ConcurrentCounterStore::Increment` directly (a stripe-lock round trip
/// and a packed-slot deserialize/serialize per event) and (b) the
/// `IngestPipeline` (lock-free SPSC submit, background workers that
/// pre-aggregate duplicate keys and batch per stripe). Under Zipfian
/// traffic the batched path does one slot update per *distinct* key per
/// batch, which is where the win comes from even on a single core.
///
/// Five extra scenarios track the elastic-pipeline work:
///  - **elastic**: replays the trace while `SetWorkerCount` steps the
///    worker pool 1→4→2→4 mid-stream (the resize barrier is on the hot
///    path, so regressions show up as throughput loss).
///  - **idle**: a flushed, quiet pipeline is watched for one second; the
///    CV-parked workers must do near-zero busy passes (asserted) and only
///    a handful of timeout-bounded idle passes — this is the number that
///    collapsed when the yield/sleep poll was replaced by the eventcount.
///  - **backpressure**: tight-loop `TrySubmit` against a 2-entry queue;
///    the rejects/sec rate tracks the cost of the kPending path, and a
///    paused-pipeline phase counts heap allocations across the kPending
///    and invalid-slot reject paths (asserted zero — every rejection
///    Status is preallocated).
///  - **saturated-producer-cpu**: a blocking `Submit` parked on a full
///    ring for one second must cost <5ms of producer-thread CPU (asserted)
///    and land its event promptly once a drain frees space — the
///    producer-side mirror of the idle scenario, measuring the not-full
///    eventcount that replaced the 100µs sleep-poll backoff.
///  - **autoscale**: a producer burst against a 1-worker pool with the
///    `Autoscaler` attached must grow the pool (and shrink it back once
///    quiet) with zero lost events (asserted).
///  - **net**: the socket front-end (src/net/) on loopback — EventClient
///    connections framing the trace over TCP with credit flow control
///    into the same pipeline config, against the in-process Submit
///    ceiling. The gap is the wire tax; the exact-books invariants are
///    asserted and the lost/unaccounted counts judged as must-stay-zero.
///  - **sharded**: the merge-on-read store redesign's headline number.
///    The same exact-kind trace goes through (a) direct stripe-locked
///    `Increment` on the striped compatibility store and (b) the pipeline
///    into a `ShardedCounterStore` with one private shard per worker, at
///    1, 2, and 4 producers. The striped direct path degrades as producers
///    contend for stripe locks while the sharded `IncrementBatch` takes no
///    lock and touches no shared cache line, so the pipeline-vs-direct
///    ratio must *grow* with the producer count instead of flattening at
///    the single-producer batching gain (asserted strictly increasing on
///    hosts with >=4 hardware threads — fewer cores time-slice the
///    producers and flatten the curve by construction, so the gate is
///    logged-not-asserted there, like the backpressure scenario's
///    few-core caveat). Books are asserted exact on every pipeline run: nothing shed under
///    kBlock, applied == submitted, and the merged store total equals the
///    trace's total weight — Remark 2.4's exactness, end to end.
///  - **overload**: the shed/spill policies against a paused pipeline.
///    Shed mode blasts a frozen ring and must balance its books exactly —
///    `delivered + shed == submitted`, asserted, with the shed Submit
///    rate showing the bounded-latency drop cost. Spill mode overflows
///    the ring into the spill buffer and must lose *nothing* across the
///    pause/resume (asserted via exact store totals).
///
/// Emits a human table plus one machine-readable JSON document (stdout,
/// and `--json_out=FILE`, default `BENCH_pipeline_throughput.json` in the
/// working directory — run from the repo root for the cross-PR
/// trajectory). JSON schema (stable keys): `bench`, `keys`, `skew`,
/// `configs[] {mode, producers, events, elapsed_s, events_per_sec,
/// agg_factor}`, `elastic {producers, worker_steps[], events, elapsed_s,
/// events_per_sec, agg_factor}`, `idle {seconds, busy_passes, idle_passes,
/// wakeups, cpu_seconds}`, `backpressure {attempts, accepted, rejected,
/// elapsed_s, attempts_per_sec, rejects_per_sec, reject_attempts,
/// reject_allocs, invalid_slot_attempts, invalid_slot_allocs}`,
/// `sharded {configs[] {mode, producers, events, events_per_sec, ...}}`
/// (the sharded-pipeline entries carry `ratio`, `agg_factor`, and a
/// must-stay-zero `unaccounted_events`), `net {events, connections, elapsed_s,
/// events_per_sec, inproc_events_per_sec, frames_tx, bytes_tx,
/// credit_stalls, reconnects, lost_events, unaccounted_events}`,
/// `saturated_producer_cpu
/// {park_seconds, cpu_seconds, parks, wakeups, retries_while_parked,
/// wake_latency_s}`, `autoscale {events, burst_seconds, events_per_sec,
/// peak_workers, final_workers, scale_ups, scale_downs, samples,
/// lost_events}`, `overload {shed {attempts, delivered, shed,
/// unaccounted_events, submits_per_sec}, spill {attempts, delivered,
/// peak_spill_depth, lost_events}}`, `observability {events,
/// uninstrumented_events_per_sec, instrumented_events_per_sec,
/// overhead_pct, record_attempts, record_allocs, latency_samples,
/// latency_p50_ns, latency_p99_ns, latency_max_ns, series_points}`.
///
/// The **observability** scenario (new with the telemetry subsystem)
/// replays the trace with `enable_metrics` off and on — a live
/// `MetricsCollector` drives the coarse ticker so latency stamping is
/// active — and asserts the instrumented path costs <5% throughput and
/// never heap-allocates on the record path (sampling forced to 1/1).

#include <sys/resource.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "analytics/concurrent_store.h"
#include "analytics/sharded_counter_store.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/collector.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "pipeline/autoscaler.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

/// Process-wide allocation counter behind the reject-path
/// allocation-freedom assertion. Replacing global operator new/delete is
/// the only way to observe "this path never allocates" from outside;
/// the counting is one relaxed fetch_add over malloc, cheap enough to
/// leave on for the whole bench.
std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace countlib {
namespace {

struct RunResult {
  std::string mode;
  uint64_t producers;
  uint64_t events;
  double elapsed_s;
  double events_per_sec;
  double agg_factor;  // events applied per store update (1.0 for direct)
};

struct IdleResult {
  double seconds;
  uint64_t busy_passes;
  uint64_t idle_passes;
  uint64_t wakeups;
  double cpu_seconds;
};

struct BackpressureResult {
  uint64_t attempts;
  uint64_t accepted;
  uint64_t rejected;
  double elapsed_s;
  double attempts_per_sec;
  double rejects_per_sec;
  uint64_t reject_attempts;        // kPending audit hammer size
  uint64_t reject_allocs;          // heap allocs across the kPending hammer
  uint64_t invalid_slot_attempts;  // invalid-slot reject hammer size
  uint64_t invalid_slot_allocs;    // heap allocs across that hammer
};

struct SaturatedProducerResult {
  double park_seconds;      // wall time the producer spent blocked
  double cpu_seconds;       // producer-thread CPU across the blocked Submit
  uint64_t parks;           // eventcount park episodes
  uint64_t wakeups;         // parks ended by a drain's nonfull signal
  uint64_t retries_while_parked;  // TrySubmit rejects while blocked
  double wake_latency_s;    // resume -> Submit returned
};

struct AutoscaleResult {
  uint64_t events;
  double burst_seconds;
  double events_per_sec;
  uint64_t peak_workers;
  uint64_t final_workers;
  uint64_t scale_ups;
  uint64_t scale_downs;
  uint64_t samples;
  uint64_t lost_events;
};

struct OverloadResult {
  // Shed phase: delivered + shed must equal attempts exactly.
  uint64_t shed_attempts;
  uint64_t shed_delivered;
  uint64_t shed_shed;
  uint64_t shed_unaccounted;     // attempts - delivered - shed (must stay 0)
  double shed_submits_per_sec;   // Submit rate while the ring is frozen full
  // Spill phase: nothing may be lost.
  uint64_t spill_attempts;
  uint64_t spill_delivered;
  uint64_t spill_peak_depth;
  uint64_t spill_lost_events;    // attempts - delivered (must stay 0)
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ProcessCpuSeconds() {
  struct rusage usage;
  COUNTLIB_CHECK_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  const auto to_s = [](const struct timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
}

/// CPU consumed by the *calling thread* only — the saturated-producer
/// scenario charges the parked producer, not the workers draining beside
/// it.
double ThreadCpuSeconds() {
  struct timespec ts;
  COUNTLIB_CHECK_EQ(clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts), 0);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

analytics::ConcurrentCounterStore MakeStore(uint64_t stripes, uint64_t n_max) {
  return analytics::ConcurrentCounterStore::Make(stripes, CounterKind::kSampling,
                                                 16, n_max, 7)
      .ValueOrDie();
}

/// Splits the trace round-robin so every producer sees the same key skew.
std::vector<std::vector<pipeline::Event>> Partition(
    const std::vector<stream::KeyEvent>& events, uint64_t producers) {
  std::vector<std::vector<pipeline::Event>> parts(producers);
  for (auto& p : parts) p.reserve(events.size() / producers + 1);
  for (size_t i = 0; i < events.size(); ++i) {
    parts[i % producers].push_back(
        pipeline::Event{events[i].key, events[i].weight});
  }
  return parts;
}

RunResult RunDirect(const std::vector<std::vector<pipeline::Event>>& parts,
                    uint64_t stripes, uint64_t n_max) {
  auto store = MakeStore(stripes, n_max);
  uint64_t total = 0;
  for (const auto& p : parts) total += p.size();
  const double start = Now();
  std::vector<std::thread> threads;
  for (const auto& part : parts) {
    threads.emplace_back([&store, &part] {
      for (const pipeline::Event& e : part) {
        COUNTLIB_CHECK_OK(store.Increment(e.key, e.weight));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = Now() - start;
  return RunResult{"direct", parts.size(), total, elapsed,
                   static_cast<double>(total) / elapsed, 1.0};
}

RunResult RunPipeline(const std::vector<std::vector<pipeline::Event>>& parts,
                      uint64_t stripes, uint64_t n_max, uint64_t workers,
                      uint64_t queue_capacity, uint64_t max_batch,
                      const std::vector<uint64_t>& worker_steps = {}) {
  auto store = MakeStore(stripes, n_max);
  pipeline::PipelineOptions opt;
  opt.num_producers = parts.size();
  opt.num_workers = workers;
  opt.queue_capacity = queue_capacity;
  opt.max_batch = max_batch;
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
  uint64_t total = 0;
  for (const auto& p : parts) total += p.size();
  const double start = Now();
  std::vector<std::thread> threads;
  for (uint64_t p = 0; p < parts.size(); ++p) {
    threads.emplace_back([&ingest, &parts, p] {
      for (const pipeline::Event& e : parts[p]) {
        COUNTLIB_CHECK_OK(ingest->Submit(p, e.key, e.weight));
      }
    });
  }
  // The elastic scenario: step the worker pool while producers submit.
  // Each step re-partitions ring ownership at the join barrier; queued
  // events must all survive (checked below via events_applied).
  for (uint64_t n : worker_steps) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    COUNTLIB_CHECK_OK(ingest->SetWorkerCount(n));
  }
  for (auto& t : threads) t.join();
  COUNTLIB_CHECK_OK(ingest->Drain());
  const double elapsed = Now() - start;
  const pipeline::PipelineStats stats = ingest->Stats();
  COUNTLIB_CHECK_EQ(stats.events_applied, total);
  const double agg = stats.updates_applied == 0
                         ? 1.0
                         : static_cast<double>(stats.events_applied) /
                               static_cast<double>(stats.updates_applied);
  return RunResult{worker_steps.empty() ? "pipeline" : "pipeline-elastic",
                   parts.size(), total, elapsed,
                   static_cast<double>(total) / elapsed, agg};
}

/// Watches a flushed, quiet pipeline for `seconds`: with CV-parked workers
/// the busy-pass count must stay at zero and the idle passes bounded by
/// the sleep-timeout wake rate (~20/s per worker) — the old yield/sleep
/// backoff burned ~10k passes/s per worker here.
IdleResult RunIdle(double seconds, uint64_t workers) {
  auto store = MakeStore(16, 1u << 20);
  pipeline::PipelineOptions opt;
  opt.num_producers = workers;
  opt.num_workers = workers;
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
  for (uint64_t p = 0; p < workers; ++p) {
    for (uint64_t i = 0; i < 1000; ++i) {
      COUNTLIB_CHECK_OK(ingest->Submit(p, i, 1));
    }
  }
  COUNTLIB_CHECK_OK(ingest->Flush());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // settle

  const pipeline::PipelineStats before = ingest->Stats();
  const double cpu_before = ProcessCpuSeconds();
  const double start = Now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  const double elapsed = Now() - start;
  const double cpu = ProcessCpuSeconds() - cpu_before;
  const pipeline::PipelineStats after = ingest->Stats();
  COUNTLIB_CHECK_OK(ingest->Drain());

  IdleResult r;
  r.seconds = elapsed;
  r.busy_passes = after.batches_applied - before.batches_applied;
  r.idle_passes = after.idle_passes - before.idle_passes;
  r.wakeups = after.worker_wakeups - before.worker_wakeups;
  r.cpu_seconds = cpu;
  // The acceptance gate: a quiet second must be near-free. Zero batches
  // (nothing was submitted) and idle passes bounded well under the old
  // poll rate.
  COUNTLIB_CHECK_EQ(r.busy_passes, uint64_t{0});
  COUNTLIB_CHECK_LT(r.idle_passes, uint64_t{1000});
  return r;
}

/// Tight-loop TrySubmit against a tiny queue: the rejects/sec rate is a
/// direct read on the kPending path's cost (now allocation-free). The
/// accepted count is scheduler-dependent (the hammer loop deliberately
/// never backs off, so on few-core boxes the worker runs only on
/// preemption) — only the attempt/reject rates are meaningful here.
BackpressureResult RunBackpressure(double seconds) {
  auto store = MakeStore(4, 1u << 20);
  pipeline::PipelineOptions opt;
  opt.num_producers = 1;
  opt.num_workers = 1;
  opt.queue_capacity = 2;
  opt.max_batch = 1;
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
  BackpressureResult r{0, 0, 0, 0.0, 0.0, 0.0, 0, 0, 0, 0};
  const double start = Now();
  const double deadline = start + seconds;
  while (Now() < deadline) {
    for (int i = 0; i < 1024; ++i) {
      const Status st = ingest->TrySubmit(0, /*key=*/r.attempts & 63, 1);
      ++r.attempts;
      if (st.ok()) {
        ++r.accepted;
      } else {
        COUNTLIB_CHECK(st.IsPending()) << st.ToString();
        ++r.rejected;
      }
    }
  }
  r.elapsed_s = Now() - start;

  // Allocation-freedom audit of the reject paths. Pause the pipeline
  // (SetWorkerCount(0)) so the only thread that could allocate is this
  // one: with the workers gone, a nonzero delta across the hammer loops
  // can only come from the reject paths themselves.
  COUNTLIB_CHECK_OK(ingest->SetWorkerCount(0));
  while (ingest->TrySubmit(0, 1, 1).ok()) {
  }
  constexpr uint64_t kAuditAttempts = 100000;
  // Warm both paths once first: the preallocated Status objects are
  // function-local statics, so their one-time construction (which does
  // allocate) must not be charged to the steady-state audit.
  COUNTLIB_CHECK(ingest->TrySubmit(0, 0, 1).IsPending());
  COUNTLIB_CHECK(ingest->TrySubmit(/*producer=*/1u << 20, 0, 1)
                     .IsInvalidArgument());
  uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < kAuditAttempts; ++i) {
    COUNTLIB_CHECK(ingest->TrySubmit(0, i & 63, 1).IsPending());
  }
  r.reject_attempts = kAuditAttempts;
  r.reject_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  r.invalid_slot_attempts = kAuditAttempts;
  allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < kAuditAttempts; ++i) {
    COUNTLIB_CHECK(ingest->TrySubmit(/*producer=*/1u << 20, i & 63, 1)
                       .IsInvalidArgument());
  }
  r.invalid_slot_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  // The acceptance gate: rejection is exactly the moment the system is
  // saturated, so neither reject path may touch the heap.
  COUNTLIB_CHECK_EQ(r.reject_allocs, uint64_t{0});
  COUNTLIB_CHECK_EQ(r.invalid_slot_allocs, uint64_t{0});

  COUNTLIB_CHECK_OK(ingest->Drain());
  r.attempts_per_sec = static_cast<double>(r.attempts) / r.elapsed_s;
  r.rejects_per_sec = static_cast<double>(r.rejected) / r.elapsed_s;
  return r;
}

/// A producer parked on a full ring for `seconds`: with the not-full
/// eventcount the blocked Submit must cost milliseconds of CPU (asserted
/// <5ms per parked second), where the old 100µs sleep-poll backoff burned
/// a meaningful slice of a core. The pipeline is paused so no drain frees
/// space until the resume, which also measures the wake latency.
SaturatedProducerResult RunSaturatedProducer(double seconds) {
  auto store = MakeStore(4, 1u << 20);
  pipeline::PipelineOptions opt;
  opt.num_producers = 1;
  opt.num_workers = 1;
  opt.queue_capacity = 1024;
  opt.max_batch = 2048;  // the resume drains the whole ring in one pass
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
  COUNTLIB_CHECK_OK(ingest->SetWorkerCount(0));
  while (ingest->TrySubmit(0, 1, 1).ok()) {
  }
  const pipeline::PipelineStats before = ingest->Stats();

  std::atomic<double> cpu{0.0};
  std::atomic<double> returned_at{0.0};
  const double park_start = Now();
  std::thread producer([&] {
    const double cpu_before = ThreadCpuSeconds();
    COUNTLIB_CHECK_OK(ingest->Submit(0, /*key=*/1, /*weight=*/1));
    cpu.store(ThreadCpuSeconds() - cpu_before, std::memory_order_relaxed);
    returned_at.store(Now(), std::memory_order_relaxed);
  });
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  const double resume_at = Now();
  COUNTLIB_CHECK_OK(ingest->SetWorkerCount(1));
  producer.join();

  const pipeline::PipelineStats after = ingest->Stats();
  COUNTLIB_CHECK_OK(ingest->Drain());
  SaturatedProducerResult r;
  r.park_seconds = returned_at.load() - park_start;
  r.cpu_seconds = cpu.load();
  r.parks = after.producer_parks - before.producer_parks;
  r.wakeups = after.producer_wakeups - before.producer_wakeups;
  r.retries_while_parked = after.events_rejected - before.events_rejected;
  r.wake_latency_s = returned_at.load() - resume_at;
  // The acceptance gates: a parked second costs <5ms of producer CPU (the
  // ISSUE 3 criterion), and the wake rides the first drain, not a coarse
  // timeout ladder.
  COUNTLIB_CHECK_LT(r.cpu_seconds, 0.005 * (seconds < 1.0 ? 1.0 : seconds));
  COUNTLIB_CHECK_LT(r.wake_latency_s, 0.25);
  return r;
}

/// A burst against a 1-worker pool with the Autoscaler attached: the pool
/// must grow under the burst, shrink back once quiet, and lose nothing.
/// max_batch is kept small so the burst visibly outruns the initial
/// worker.
AutoscaleResult RunAutoscale(double burst_seconds) {
  auto store = MakeStore(16, 1u << 24);
  pipeline::PipelineOptions opt;
  opt.num_producers = 4;
  opt.num_workers = 1;
  opt.queue_capacity = 2048;
  opt.max_batch = 64;
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();

  pipeline::AutoscalerConfig config;
  config.min_workers = 1;
  config.max_workers = 4;
  config.sample_interval = std::chrono::milliseconds(5);
  config.cooldown = std::chrono::milliseconds(25);
  config.scale_up_queue_depth = 2048;
  config.scale_up_samples = 1;
  config.scale_down_queue_depth = 128;
  config.scale_down_samples = 4;
  auto scaler = pipeline::Autoscaler::Make(ingest.get(), config).ValueOrDie();

  AutoscaleResult r{};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> produced{0};
  std::vector<std::thread> producers;
  for (uint64_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        COUNTLIB_CHECK_OK(ingest->Submit(p, /*key=*/(p * 8191 + i++) & 4095, 1));
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const double start = Now();
  r.peak_workers = ingest->num_workers();
  while (Now() - start < burst_seconds) {
    r.peak_workers = std::max(r.peak_workers, ingest->num_workers());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  r.burst_seconds = Now() - start;
  r.events = produced.load();
  r.events_per_sec = static_cast<double>(r.events) / r.burst_seconds;

  // Quiet period: wait (bounded) for the pool to walk back to the floor.
  const double quiet_deadline = Now() + 10.0;
  while (ingest->num_workers() > config.min_workers && Now() < quiet_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  r.final_workers = ingest->num_workers();
  scaler->Stop();
  const pipeline::AutoscalerStats as = scaler->Stats();
  r.scale_ups = as.scale_ups;
  r.scale_downs = as.scale_downs;
  r.samples = as.samples;

  COUNTLIB_CHECK_OK(ingest->Flush());
  COUNTLIB_CHECK_OK(ingest->Drain());
  const pipeline::PipelineStats stats = ingest->Stats();
  r.lost_events = r.events - stats.events_applied;
  // The acceptance gates: the burst grew the pool, the quiet shrank it
  // back, and the churn lost nothing.
  COUNTLIB_CHECK_GT(r.peak_workers, uint64_t{1});
  COUNTLIB_CHECK_EQ(r.final_workers, config.min_workers);
  COUNTLIB_CHECK_EQ(r.lost_events, uint64_t{0});
  return r;
}

/// The overload policies against a paused pipeline (the hard overload
/// case: zero drain progress). Shed mode must keep Submit non-blocking
/// and balance delivered + shed == submitted to the last event; spill
/// mode must deliver every single event once resumed. Both invariants are
/// asserted here, not just reported.
OverloadResult RunOverload() {
  OverloadResult r{};
  {
    // Shed phase.
    auto store = MakeStore(4, 1u << 20);
    pipeline::PipelineOptions opt;
    opt.num_producers = 1;
    opt.num_workers = 1;
    opt.queue_capacity = 1024;
    opt.overload.policy = pipeline::OverloadPolicy::kShed;
    auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
    COUNTLIB_CHECK_OK(ingest->SetWorkerCount(0));  // freeze: no drains
    constexpr uint64_t kAttempts = 100000;
    const double start = Now();
    for (uint64_t i = 0; i < kAttempts; ++i) {
      // Never blocks, never returns kPending: the frozen ring fills and
      // every further event is shed with exact accounting.
      COUNTLIB_CHECK_OK(ingest->Submit(0, /*key=*/i & 63, 1));
    }
    const double elapsed = Now() - start;
    COUNTLIB_CHECK_OK(ingest->SetWorkerCount(1));
    COUNTLIB_CHECK_OK(ingest->Drain());
    const pipeline::PipelineStats stats = ingest->Stats();
    r.shed_attempts = kAttempts;
    r.shed_delivered = stats.events_applied;
    r.shed_shed = stats.events_shed;
    r.shed_unaccounted = kAttempts - stats.events_applied - stats.events_shed;
    r.shed_submits_per_sec = static_cast<double>(kAttempts) / elapsed;
    // The books must balance exactly, and shedding must actually have
    // happened (the ring holds 1024 of the 100k attempts).
    COUNTLIB_CHECK_EQ(r.shed_delivered + r.shed_shed, r.shed_attempts);
    COUNTLIB_CHECK_EQ(r.shed_unaccounted, uint64_t{0});
    COUNTLIB_CHECK_GT(r.shed_shed, uint64_t{0});
  }
  {
    // Spill phase.
    auto store = MakeStore(4, 1u << 20);
    pipeline::PipelineOptions opt;
    opt.num_producers = 1;
    opt.num_workers = 1;
    opt.queue_capacity = 1024;
    opt.max_batch = 2048;
    opt.overload.policy = pipeline::OverloadPolicy::kSpill;
    opt.overload.spill_capacity = 1u << 16;
    auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
    COUNTLIB_CHECK_OK(ingest->SetWorkerCount(0));
    constexpr uint64_t kAttempts = 50000;  // ring 1024 + ~49k spilled
    for (uint64_t i = 0; i < kAttempts; ++i) {
      COUNTLIB_CHECK_OK(ingest->Submit(0, /*key=*/i & 63, 1));
    }
    r.spill_peak_depth = ingest->Stats().spill_depth;
    COUNTLIB_CHECK_OK(ingest->SetWorkerCount(1));
    COUNTLIB_CHECK_OK(ingest->Drain());
    const pipeline::PipelineStats stats = ingest->Stats();
    r.spill_attempts = kAttempts;
    r.spill_delivered = stats.events_applied;
    r.spill_lost_events = kAttempts - stats.events_applied;
    // Spill mode loses nothing, and the overflow genuinely went through
    // the spill buffer (not the rings).
    COUNTLIB_CHECK_EQ(r.spill_lost_events, uint64_t{0});
    COUNTLIB_CHECK_EQ(stats.events_shed, uint64_t{0});
    COUNTLIB_CHECK_GT(r.spill_peak_depth, uint64_t{0});
  }
  return r;
}

struct ShardedRunResult {
  uint64_t producers;
  uint64_t events;
  double direct_events_per_sec;   // striped exact store, stripe-locked
  double sharded_events_per_sec;  // pipeline into per-worker private shards
  double ratio;                   // sharded pipeline over striped direct
  double agg_factor;              // events per store update, pipeline run
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];  // callers pass odd-sized samples
}

/// One timed direct run: `passes` replays of the partitioned trace through
/// contended stripe-locked `Increment` on the compat store.
double MeasureShardedDirect(
    const std::vector<std::vector<pipeline::Event>>& parts, uint64_t stripes,
    uint64_t n_max, int passes, uint64_t total_events) {
  auto striped = analytics::ConcurrentCounterStore::Make(
                     stripes, CounterKind::kExact, 32, n_max, 7)
                     .ValueOrDie();
  const double start = Now();
  std::vector<std::thread> threads;
  for (const auto& part : parts) {
    threads.emplace_back([&striped, &part, passes] {
      for (int pass = 0; pass < passes; ++pass) {
        for (const pipeline::Event& e : part) {
          COUNTLIB_CHECK_OK(striped.Increment(e.key, e.weight));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(total_events) / (Now() - start);
}

/// One timed pipeline run into private shards — one shard (= lane) per
/// worker, one worker per producer, so writer concurrency scales with the
/// load — with the exact books asserted on every run.
double MeasureShardedPipeline(
    const std::vector<std::vector<pipeline::Event>>& parts, uint64_t n_max,
    int passes, uint64_t total_events, uint64_t total_weight,
    double* agg_factor) {
  const uint64_t producers = parts.size();
  auto sharded = analytics::ShardedCounterStore::Make(
                     producers, CounterKind::kExact, 32, n_max, 7)
                     .ValueOrDie();
  pipeline::PipelineOptions opt;
  opt.num_producers = producers;
  opt.num_workers = producers;
  opt.queue_capacity = 8192;
  opt.max_batch = 2048;
  auto ingest =
      pipeline::IngestPipeline::Make(sharded.get(), opt).ValueOrDie();
  const double start = Now();
  std::vector<std::thread> threads;
  for (uint64_t p = 0; p < producers; ++p) {
    threads.emplace_back([&ingest, &parts, p, passes] {
      for (int pass = 0; pass < passes; ++pass) {
        for (const pipeline::Event& e : parts[p]) {
          COUNTLIB_CHECK_OK(ingest->Submit(p, e.key, e.weight));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  COUNTLIB_CHECK_OK(ingest->Drain());
  const double elapsed = Now() - start;
  const pipeline::PipelineStats stats = ingest->Stats();
  // Exact books: kBlock is lossless — delivered + shed == submitted with
  // shed identically zero.
  COUNTLIB_CHECK_EQ(stats.events_submitted, total_events);
  COUNTLIB_CHECK_EQ(stats.events_applied + stats.events_shed, total_events);
  COUNTLIB_CHECK_EQ(stats.events_shed, uint64_t{0});
  // Remark 2.4, end to end: the merged exact-kind store accounts for the
  // trace's total weight to the last unit.
  double merged_total = 0.0;
  COUNTLIB_CHECK_OK(sharded->ForEach(
      [&merged_total](uint64_t, double est) { merged_total += est; }));
  COUNTLIB_CHECK_EQ(static_cast<uint64_t>(merged_total), total_weight);
  *agg_factor = static_cast<double>(stats.events_applied) /
                static_cast<double>(stats.updates_applied);
  return static_cast<double>(total_events) / elapsed;
}

/// The store redesign's acceptance number: with the striped store the
/// pipeline-vs-direct ratio flattens at the batching gain (~2.3x) because
/// workers still serialize on stripe locks; with one private shard per
/// worker there is nothing left to serialize on, while the direct path
/// keeps paying more for its stripe locks as producers are added. Both
/// sides run the exact counter kind so the merged totals can be checked to
/// the last unit.
///
/// Noise discipline (the strictly-increasing assertion must hold on loaded
/// single-core CI runners): each rep times a *pair* of back-to-back runs —
/// direct then pipeline — so machine drift hits both sides of each ratio
/// sample; every timed run replays the trace `kPasses` times to stretch
/// the window past scheduler-quantum noise; and the judged ratio is the
/// median of the per-rep paired ratios, immune to a couple of outlier
/// reps in either direction.
std::vector<ShardedRunResult> RunShardedScaling(
    const std::vector<stream::KeyEvent>& events, uint64_t stripes) {
  constexpr uint64_t kNMax = (uint64_t{1} << 32) - 1;
  constexpr int kReps = 5;    // odd, for the median
  constexpr int kPasses = 2;  // trace replays per timed run
  uint64_t trace_weight = 0;
  for (const auto& e : events) trace_weight += e.weight;
  const uint64_t total_events = events.size() * kPasses;
  const uint64_t total_weight = trace_weight * kPasses;
  std::vector<ShardedRunResult> out;
  for (uint64_t producers : {uint64_t{1}, uint64_t{2}, uint64_t{4}}) {
    const auto parts = Partition(events, producers);
    ShardedRunResult r{};
    r.producers = producers;
    r.events = total_events;
    std::vector<double> direct_eps, pipeline_eps, ratios;
    for (int rep = 0; rep < kReps; ++rep) {
      const double d = MeasureShardedDirect(parts, stripes, kNMax, kPasses,
                                            total_events);
      const double p = MeasureShardedPipeline(parts, kNMax, kPasses,
                                              total_events, total_weight,
                                              &r.agg_factor);
      direct_eps.push_back(d);
      pipeline_eps.push_back(p);
      ratios.push_back(p / d);
    }
    r.direct_events_per_sec = Median(direct_eps);
    r.sharded_events_per_sec = Median(pipeline_eps);
    r.ratio = Median(ratios);
    out.push_back(r);
  }
  // The acceptance gate: no plateau — the pipeline-vs-direct ratio grows
  // strictly with every producer-count step. Log the medians first so a
  // gate trip in CI still shows the whole curve.
  for (const ShardedRunResult& r : out) {
    std::printf("# sharded[p=%llu]: direct %.2fM ev/s, pipeline %.2fM ev/s, "
                "ratio %.3f\n",
                static_cast<unsigned long long>(r.producers),
                r.direct_events_per_sec / 1e6, r.sharded_events_per_sec / 1e6,
                r.ratio);
  }
  std::fflush(stdout);  // the curve must survive a gate abort in CI logs
  // The acceptance gate needs real parallelism to be physical: on a box
  // with fewer hardware threads than the widest configuration, producers
  // time-slice one core, stripe locks are never truly contended, and the
  // ratio is flat by construction (same few-core caveat as the
  // backpressure scenario). The exact-books invariants above are asserted
  // unconditionally either way.
  if (std::thread::hardware_concurrency() >= 4) {
    for (size_t i = 1; i < out.size(); ++i) {
      COUNTLIB_CHECK_GT(out[i].ratio, out[i - 1].ratio);
    }
  } else {
    std::printf(
        "# sharded: %u hardware thread(s) < 4 — ratio-growth gate skipped "
        "(needs real parallelism), exact books still asserted\n",
        std::thread::hardware_concurrency());
  }
  return out;
}

struct NetResult {
  uint64_t events;
  uint64_t connections;
  double elapsed_s;
  double events_per_sec;         // over loopback TCP, framed + credited
  double inproc_events_per_sec;  // the same trace via in-process Submit
  uint64_t frames_tx;            // client-side event frames
  uint64_t bytes_tx;             // client-side wire bytes out
  uint64_t credit_stalls;        // client parks waiting for a refill
  uint64_t reconnects;
  uint64_t lost_events;          // must stay zero on a healthy loopback
  uint64_t unaccounted_events;   // submitted - delivered - shed - lost (0)
};

/// The socket front-end against its in-process ceiling: the same Zipf
/// trace replayed (a) through EventClient connections over loopback TCP —
/// framing, CRC, credit flow control, acks — into the pipeline, and (b)
/// through plain in-process `Submit` on the identical pipeline config.
/// The events/s gap is the whole wire tax; the exact-accounting
/// invariants (nothing lost, nothing unaccounted) are asserted here and
/// judged as must-stay-zero by bench_diff.
NetResult RunNet(uint64_t num_events, uint64_t keys, double skew,
                 uint64_t stripes, uint64_t connections,
                 uint64_t queue_capacity, uint64_t max_batch) {
  auto trace =
      stream::Trace::GenerateZipf(keys, skew, num_events, 4242).ValueOrDie();
  const auto& events = trace.events();
  NetResult r{};
  r.events = num_events;
  r.connections = connections;

  const auto make_pipeline = [&](analytics::ConcurrentCounterStore* store) {
    pipeline::PipelineOptions opt;
    opt.num_producers = connections;
    opt.num_workers = 2;
    opt.queue_capacity = queue_capacity;
    opt.max_batch = max_batch;
    return pipeline::IngestPipeline::Make(store, opt).ValueOrDie();
  };

  {
    // Loopback run.
    auto store = MakeStore(stripes, num_events);
    auto ingest = make_pipeline(&store);
    auto server =
        net::EventServer::Make(ingest.get(), net::ServerOptions()).ValueOrDie();
    std::vector<net::ClientStats> per_conn(connections);
    const double start = Now();
    std::vector<std::thread> threads;
    for (uint64_t c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        net::ClientOptions copt;
        copt.port = server->port();
        auto client = net::EventClient::Connect(copt).ValueOrDie();
        for (uint64_t i = c; i < events.size(); i += connections) {
          COUNTLIB_CHECK_OK(client->Submit(events[i].key, events[i].weight));
        }
        COUNTLIB_CHECK_OK(client->Close());
        per_conn[c] = client->Stats();
      });
    }
    for (auto& t : threads) t.join();
    r.elapsed_s = Now() - start;
    COUNTLIB_CHECK_OK(server->Stop());
    COUNTLIB_CHECK_OK(ingest->Drain());

    uint64_t submitted = 0, delivered = 0, shed = 0;
    for (const auto& s : per_conn) {
      submitted += s.events_submitted;
      delivered += s.events_delivered;
      shed += s.events_shed;
      r.lost_events += s.events_lost_unacked;
      r.frames_tx += s.frames_tx;
      r.bytes_tx += s.bytes_tx;
      r.credit_stalls += s.credit_stalls;
      r.reconnects += s.reconnects;
    }
    r.unaccounted_events = submitted - delivered - shed - r.lost_events;
    r.events_per_sec = static_cast<double>(submitted) / r.elapsed_s;
    // The acceptance gates: exact books over the wire, nothing lost on a
    // healthy loopback, and everything a client submitted reached the
    // pipeline.
    COUNTLIB_CHECK_EQ(submitted, num_events);
    COUNTLIB_CHECK_EQ(r.lost_events, uint64_t{0});
    COUNTLIB_CHECK_EQ(r.unaccounted_events, uint64_t{0});
    COUNTLIB_CHECK_EQ(ingest->Stats().events_applied, delivered);
  }

  {
    // In-process ceiling: same pipeline shape, no sockets.
    auto store = MakeStore(stripes, num_events);
    auto ingest = make_pipeline(&store);
    const double start = Now();
    std::vector<std::thread> threads;
    for (uint64_t c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        for (uint64_t i = c; i < events.size(); i += connections) {
          COUNTLIB_CHECK_OK(ingest->Submit(c, events[i].key,
                                           events[i].weight));
        }
      });
    }
    for (auto& t : threads) t.join();
    COUNTLIB_CHECK_OK(ingest->Drain());
    r.inproc_events_per_sec =
        static_cast<double>(num_events) / (Now() - start);
  }
  return r;
}

struct ObservabilityResult {
  uint64_t events;                        // per replay
  double uninstrumented_events_per_sec;   // best of 3
  double instrumented_events_per_sec;     // best of 3, collector live
  double overhead_pct;                    // (base - inst) / base, floored at 0
  uint64_t record_attempts;               // alloc-audit hammer size
  uint64_t record_allocs;                 // heap allocs across the hammer
  uint64_t latency_samples;               // submit->apply recordings
  uint64_t latency_p50_ns;
  uint64_t latency_p99_ns;
  uint64_t latency_max_ns;
  uint64_t series_points;                 // queue-depth points collected
};

/// The telemetry overhead check: the same single-producer replay with
/// `enable_metrics` off and on (collector live, so latency stamping is
/// active at the default 1/64 sampling). Best-of-3 per mode damps
/// scheduler noise; the <5% ceiling is asserted here AND judged by
/// bench_diff against the committed baseline. A paused-pipeline phase then
/// hammers the instrumented TrySubmit path (sampling forced to 1/1) and
/// asserts it never touches the heap — counters, histogram recording and
/// timestamp stamping are all preallocated.
ObservabilityResult RunObservability(
    const std::vector<std::vector<pipeline::Event>>& parts, uint64_t stripes,
    uint64_t n_max, uint64_t queue_capacity, uint64_t max_batch) {
  ObservabilityResult r{};
  for (const auto& p : parts) r.events += p.size();

  const auto replay = [&](bool instrument, obs::HistogramSnapshot* latency) {
    auto store = MakeStore(stripes, n_max);
    pipeline::PipelineOptions opt;
    opt.num_producers = parts.size();
    opt.num_workers = 1;
    opt.queue_capacity = queue_capacity;
    opt.max_batch = max_batch;
    opt.enable_metrics = instrument;
    auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
    const double start = Now();
    std::vector<std::thread> threads;
    for (uint64_t p = 0; p < parts.size(); ++p) {
      threads.emplace_back([&ingest, &parts, p] {
        for (const pipeline::Event& e : parts[p]) {
          COUNTLIB_CHECK_OK(ingest->Submit(p, e.key, e.weight));
        }
      });
    }
    for (auto& t : threads) t.join();
    COUNTLIB_CHECK_OK(ingest->Drain());
    const double elapsed = Now() - start;
    if (latency != nullptr) {
      // Snapshot before the pipeline (and its registrations) go away.
      const obs::Snapshot snap = obs::GlobalSnapshot();
      *latency =
          snap.histograms.at("countlib_pipeline_submit_apply_latency_ns");
    }
    return static_cast<double>(r.events) / elapsed;
  };

  {
    // The collector drives the coarse ticker, samples the pipeline gauges
    // into series, and makes the instrumented run pay full freight. A 1ms
    // tick (vs the 250us default) keeps the ticker thread's own wakeups
    // from dominating the measurement on single-core runners — latency
    // resolution is 1ms, which the log2 buckets absorb anyway.
    obs::CollectorOptions collector_options;
    collector_options.tick_interval = std::chrono::milliseconds(1);
    auto collector =
        obs::MetricsCollector::Make(nullptr, collector_options).ValueOrDie();
    obs::HistogramSnapshot latency{};
    // Interleaved best-of-4 per mode: alternating off/on means machine
    // drift (frequency steps, noisy neighbors on shared runners) hits
    // both modes instead of poisoning one side's whole sample.
    for (int i = 0; i < 4; ++i) {
      r.uninstrumented_events_per_sec =
          std::max(r.uninstrumented_events_per_sec, replay(false, nullptr));
      r.instrumented_events_per_sec =
          std::max(r.instrumented_events_per_sec, replay(true, &latency));
    }
    r.latency_samples = latency.count;
    r.latency_p50_ns = latency.Percentile(0.50);
    r.latency_p99_ns = latency.Percentile(0.99);
    r.latency_max_ns = latency.max;
    collector->Stop();
    const auto series = collector->Series();
    const auto it = series.find("countlib_pipeline_queue_depth");
    r.series_points = it == series.end() ? 0 : it->second.size();
  }
  r.overhead_pct = std::max(
      0.0, 100.0 *
               (r.uninstrumented_events_per_sec -
                r.instrumented_events_per_sec) /
               r.uninstrumented_events_per_sec);

  {
    // Allocation-freedom audit of the instrumented record path. Workers
    // paused, coarse clock set by hand (no collector thread to muddy the
    // counter), sampling at 1/1: every TrySubmit stamps, counts, and — on
    // the full-ring side — takes the preallocated reject.
    auto store = MakeStore(4, 1u << 20);
    pipeline::PipelineOptions opt;
    opt.num_producers = 1;
    opt.queue_capacity = 1024;
    opt.enable_metrics = true;
    opt.latency_sample_shift = 0;
    auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
    COUNTLIB_CHECK_OK(ingest->SetWorkerCount(0));
    obs::CoarseClock::Set(1000000);
    // Warm thread-locals and the lazily built pending Status: fill the
    // ring and trip the first rejection outside the counted window.
    for (uint64_t i = 0; i < 1025; ++i) (void)ingest->TrySubmit(0, i & 63, 1);
    constexpr uint64_t kAttempts = 100000;
    const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    for (uint64_t i = 0; i < kAttempts; ++i) {
      (void)ingest->TrySubmit(0, i & 63, 1);
    }
    r.record_attempts = kAttempts;
    r.record_allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    obs::CoarseClock::Set(0);
    COUNTLIB_CHECK_OK(ingest->SetWorkerCount(1));
    COUNTLIB_CHECK_OK(ingest->Drain());
  }

  // The acceptance gates: instrumentation costs <5% throughput, records
  // without allocating, and the histogram percentiles are ordered.
  COUNTLIB_CHECK_LT(r.overhead_pct, 5.0);
  COUNTLIB_CHECK_EQ(r.record_allocs, uint64_t{0});
  COUNTLIB_CHECK_GT(r.latency_samples, uint64_t{0});
  COUNTLIB_CHECK_LE(r.latency_p50_ns, r.latency_p99_ns);
  COUNTLIB_CHECK_LE(r.latency_p99_ns, r.latency_max_ns);
  return r;
}

std::string ToJson(const std::vector<RunResult>& results,
                   const RunResult& elastic,
                   const std::vector<uint64_t>& worker_steps,
                   const IdleResult& idle, const BackpressureResult& bp,
                   const SaturatedProducerResult& sat,
                   const AutoscaleResult& autoscale,
                   const OverloadResult& overload,
                   const ObservabilityResult& obs, const NetResult& net,
                   const std::vector<ShardedRunResult>& sharded,
                   uint64_t keys, double skew) {
  std::string out = "{\"bench\":\"pipeline_throughput\",\"keys\":" +
                    std::to_string(keys) + ",\"skew\":" + std::to_string(skew) +
                    ",\"configs\":[";
  char buf[512];
  // `extra` lands verbatim inside the object, after agg_factor — the
  // elastic entry uses it to carry its worker_steps array.
  const auto append_run = [&out, &buf](const RunResult& r,
                                       const std::string& extra = "") {
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"%s\",\"producers\":%llu,\"events\":%llu,"
                  "\"elapsed_s\":%.6f,\"events_per_sec\":%.1f,"
                  "\"agg_factor\":%.3f%s}",
                  r.mode.c_str(), static_cast<unsigned long long>(r.producers),
                  static_cast<unsigned long long>(r.events), r.elapsed_s,
                  r.events_per_sec, r.agg_factor, extra.c_str());
    out += buf;
  };
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ",";
    append_run(results[i]);
  }
  out += "],\"elastic\":";
  std::string steps = ",\"worker_steps\":[";
  for (size_t i = 0; i < worker_steps.size(); ++i) {
    if (i > 0) steps += ",";
    steps += std::to_string(worker_steps[i]);
  }
  steps += "]";
  append_run(elastic, steps);
  std::snprintf(buf, sizeof(buf),
                ",\"idle\":{\"seconds\":%.3f,\"busy_passes\":%llu,"
                "\"idle_passes\":%llu,\"wakeups\":%llu,\"cpu_seconds\":%.4f}",
                idle.seconds, static_cast<unsigned long long>(idle.busy_passes),
                static_cast<unsigned long long>(idle.idle_passes),
                static_cast<unsigned long long>(idle.wakeups),
                idle.cpu_seconds);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"backpressure\":{\"attempts\":%llu,\"accepted\":%llu,"
      "\"rejected\":%llu,\"elapsed_s\":%.4f,\"attempts_per_sec\":%.1f,"
      "\"rejects_per_sec\":%.1f,\"reject_attempts\":%llu,"
      "\"reject_allocs\":%llu,"
      "\"invalid_slot_attempts\":%llu,\"invalid_slot_allocs\":%llu}",
      static_cast<unsigned long long>(bp.attempts),
      static_cast<unsigned long long>(bp.accepted),
      static_cast<unsigned long long>(bp.rejected), bp.elapsed_s,
      bp.attempts_per_sec, bp.rejects_per_sec,
      static_cast<unsigned long long>(bp.reject_attempts),
      static_cast<unsigned long long>(bp.reject_allocs),
      static_cast<unsigned long long>(bp.invalid_slot_attempts),
      static_cast<unsigned long long>(bp.invalid_slot_allocs));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"saturated_producer_cpu\":{\"park_seconds\":%.4f,"
      "\"cpu_seconds\":%.6f,\"parks\":%llu,\"wakeups\":%llu,"
      "\"retries_while_parked\":%llu,\"wake_latency_s\":%.6f}",
      sat.park_seconds, sat.cpu_seconds,
      static_cast<unsigned long long>(sat.parks),
      static_cast<unsigned long long>(sat.wakeups),
      static_cast<unsigned long long>(sat.retries_while_parked),
      sat.wake_latency_s);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"autoscale\":{\"events\":%llu,\"burst_seconds\":%.4f,"
      "\"events_per_sec\":%.1f,\"peak_workers\":%llu,"
      "\"final_workers\":%llu,\"scale_ups\":%llu,\"scale_downs\":%llu,"
      "\"samples\":%llu,\"lost_events\":%llu}",
      static_cast<unsigned long long>(autoscale.events),
      autoscale.burst_seconds, autoscale.events_per_sec,
      static_cast<unsigned long long>(autoscale.peak_workers),
      static_cast<unsigned long long>(autoscale.final_workers),
      static_cast<unsigned long long>(autoscale.scale_ups),
      static_cast<unsigned long long>(autoscale.scale_downs),
      static_cast<unsigned long long>(autoscale.samples),
      static_cast<unsigned long long>(autoscale.lost_events));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"overload\":{\"shed\":{\"attempts\":%llu,\"delivered\":%llu,"
      "\"shed\":%llu,\"unaccounted_events\":%llu,\"submits_per_sec\":%.1f},"
      "\"spill\":{\"attempts\":%llu,\"delivered\":%llu,"
      "\"peak_spill_depth\":%llu,\"lost_events\":%llu}}",
      static_cast<unsigned long long>(overload.shed_attempts),
      static_cast<unsigned long long>(overload.shed_delivered),
      static_cast<unsigned long long>(overload.shed_shed),
      static_cast<unsigned long long>(overload.shed_unaccounted),
      overload.shed_submits_per_sec,
      static_cast<unsigned long long>(overload.spill_attempts),
      static_cast<unsigned long long>(overload.spill_delivered),
      static_cast<unsigned long long>(overload.spill_peak_depth),
      static_cast<unsigned long long>(overload.spill_lost_events));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"observability\":{\"events\":%llu,"
      "\"uninstrumented_events_per_sec\":%.1f,"
      "\"instrumented_events_per_sec\":%.1f,\"overhead_pct\":%.2f,"
      "\"record_attempts\":%llu,\"record_allocs\":%llu,"
      "\"latency_samples\":%llu,\"latency_p50_ns\":%llu,"
      "\"latency_p99_ns\":%llu,\"latency_max_ns\":%llu,"
      "\"series_points\":%llu}",
      static_cast<unsigned long long>(obs.events),
      obs.uninstrumented_events_per_sec, obs.instrumented_events_per_sec,
      obs.overhead_pct, static_cast<unsigned long long>(obs.record_attempts),
      static_cast<unsigned long long>(obs.record_allocs),
      static_cast<unsigned long long>(obs.latency_samples),
      static_cast<unsigned long long>(obs.latency_p50_ns),
      static_cast<unsigned long long>(obs.latency_p99_ns),
      static_cast<unsigned long long>(obs.latency_max_ns),
      static_cast<unsigned long long>(obs.series_points));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"net\":{\"events\":%llu,\"connections\":%llu,\"elapsed_s\":%.4f,"
      "\"events_per_sec\":%.1f,\"inproc_events_per_sec\":%.1f,"
      "\"frames_tx\":%llu,\"bytes_tx\":%llu,\"credit_stalls\":%llu,"
      "\"reconnects\":%llu,\"lost_events\":%llu,"
      "\"unaccounted_events\":%llu}",
      static_cast<unsigned long long>(net.events),
      static_cast<unsigned long long>(net.connections), net.elapsed_s,
      net.events_per_sec, net.inproc_events_per_sec,
      static_cast<unsigned long long>(net.frames_tx),
      static_cast<unsigned long long>(net.bytes_tx),
      static_cast<unsigned long long>(net.credit_stalls),
      static_cast<unsigned long long>(net.reconnects),
      static_cast<unsigned long long>(net.lost_events),
      static_cast<unsigned long long>(net.unaccounted_events));
  out += buf;
  // The sharded section mirrors configs[]' (mode, producers) keying so
  // bench_diff judges its rates once the baseline carries it; the pipeline
  // entries also carry the ratio (context) and a must-stay-zero
  // unaccounted_events.
  out += ",\"sharded\":{\"configs\":[";
  for (size_t i = 0; i < sharded.size(); ++i) {
    const ShardedRunResult& r = sharded[i];
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"sharded-direct\",\"producers\":%llu,"
                  "\"events\":%llu,\"events_per_sec\":%.1f},"
                  "{\"mode\":\"sharded-pipeline\",\"producers\":%llu,"
                  "\"events\":%llu,\"events_per_sec\":%.1f,"
                  "\"agg_factor\":%.3f,\"ratio\":%.3f,"
                  "\"unaccounted_events\":0}",
                  static_cast<unsigned long long>(r.producers),
                  static_cast<unsigned long long>(r.events),
                  r.direct_events_per_sec,
                  static_cast<unsigned long long>(r.producers),
                  static_cast<unsigned long long>(r.events),
                  r.sharded_events_per_sec, r.agg_factor, r.ratio);
    out += buf;
  }
  out += "]}";
  out += "}";
  return out;
}

int Main(int argc, const char* const* argv) {
  FlagParser flags("pipeline_throughput: direct locked ingest vs async batched pipeline");
  flags.AddUint64("keys", 10000, "distinct keys in the trace");
  flags.AddUint64("events", 1000000, "events per configuration");
  flags.AddDouble("skew", 1.0, "Zipf skew");
  flags.AddUint64("stripes", 16, "store stripes");
  flags.AddUint64("workers", 1, "pipeline drain threads");
  flags.AddUint64("queue_capacity", 8192, "per-producer queue capacity");
  flags.AddUint64("max_batch", 2048, "max events per pre-aggregated batch");
  flags.AddDouble("idle_seconds", 1.0, "quiet-pipeline observation window");
  flags.AddUint64("net_events", 1000000,
                  "events for the loopback socket-ingestion scenario");
  flags.AddUint64("net_connections", 4,
                  "client connections in the net scenario");
  flags.AddString("json_out", "BENCH_pipeline_throughput.json",
                  "write the JSON document to this file (empty to skip)");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t keys = flags.GetUint64("keys");
  const uint64_t events = flags.GetUint64("events");
  const double skew = flags.GetDouble("skew");

  auto trace = stream::Trace::GenerateZipf(keys, skew, events, 4242).ValueOrDie();
  std::printf("# PIPELINE: %llu events over %llu keys, Zipf skew %.2f\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(keys), skew);

  std::vector<RunResult> results;
  TableWriter table(&std::cout, {"mode", "producers", "events_per_sec",
                                 "elapsed_s", "agg_factor"});
  for (uint64_t producers : {uint64_t{1}, uint64_t{4}}) {
    const auto parts = Partition(trace.events(), producers);
    for (int mode = 0; mode < 2; ++mode) {
      RunResult r = mode == 0
                        ? RunDirect(parts, flags.GetUint64("stripes"), events)
                        : RunPipeline(parts, flags.GetUint64("stripes"), events,
                                      flags.GetUint64("workers"),
                                      flags.GetUint64("queue_capacity"),
                                      flags.GetUint64("max_batch"));
      table.BeginRow() << r.mode << r.producers << r.events_per_sec
                       << r.elapsed_s << r.agg_factor;
      COUNTLIB_CHECK_OK(table.EndRow());
      results.push_back(std::move(r));
    }
  }

  const std::vector<uint64_t> worker_steps = {4, 2, 4};
  const auto elastic_parts = Partition(trace.events(), 4);
  RunResult elastic = RunPipeline(
      elastic_parts, flags.GetUint64("stripes"), events, /*workers=*/1,
      flags.GetUint64("queue_capacity"), flags.GetUint64("max_batch"),
      worker_steps);
  table.BeginRow() << elastic.mode << elastic.producers
                   << elastic.events_per_sec << elastic.elapsed_s
                   << elastic.agg_factor;
  COUNTLIB_CHECK_OK(table.EndRow());

  const IdleResult idle = RunIdle(flags.GetDouble("idle_seconds"), 2);
  std::printf(
      "# idle: %.2fs quiet -> %llu busy passes, %llu idle passes, "
      "%llu wakeups, %.4fs cpu\n",
      idle.seconds, static_cast<unsigned long long>(idle.busy_passes),
      static_cast<unsigned long long>(idle.idle_passes),
      static_cast<unsigned long long>(idle.wakeups), idle.cpu_seconds);

  const BackpressureResult bp = RunBackpressure(0.25);
  std::printf(
      "# backpressure: %.1fM TrySubmit/s against a full queue "
      "(%.0f%% rejected, allocation-free kPending)\n"
      "#   reject-path heap allocs over %llu kPending + %llu invalid-slot "
      "attempts: %llu + %llu\n",
      bp.attempts_per_sec / 1e6,
      100.0 * static_cast<double>(bp.rejected) /
          static_cast<double>(bp.attempts == 0 ? 1 : bp.attempts),
      static_cast<unsigned long long>(bp.reject_attempts),
      static_cast<unsigned long long>(bp.invalid_slot_attempts),
      static_cast<unsigned long long>(bp.reject_allocs),
      static_cast<unsigned long long>(bp.invalid_slot_allocs));

  const SaturatedProducerResult sat =
      RunSaturatedProducer(flags.GetDouble("idle_seconds"));
  std::printf(
      "# saturated-producer-cpu: %.2fs parked on a full ring -> %.4fms "
      "producer CPU, %llu parks, %llu retries, woke %.2fms after resume\n",
      sat.park_seconds, sat.cpu_seconds * 1e3,
      static_cast<unsigned long long>(sat.parks),
      static_cast<unsigned long long>(sat.retries_while_parked),
      sat.wake_latency_s * 1e3);

  const AutoscaleResult autoscale = RunAutoscale(0.5);
  std::printf(
      "# autoscale: %.2fs burst of %llu events -> pool 1 -> %llu -> %llu "
      "(%llu ups, %llu downs over %llu samples), %llu lost\n",
      autoscale.burst_seconds,
      static_cast<unsigned long long>(autoscale.events),
      static_cast<unsigned long long>(autoscale.peak_workers),
      static_cast<unsigned long long>(autoscale.final_workers),
      static_cast<unsigned long long>(autoscale.scale_ups),
      static_cast<unsigned long long>(autoscale.scale_downs),
      static_cast<unsigned long long>(autoscale.samples),
      static_cast<unsigned long long>(autoscale.lost_events));

  const OverloadResult overload = RunOverload();
  std::printf(
      "# overload: shed %llu attempts -> %llu delivered + %llu shed "
      "(balanced, %.1fM submits/s frozen); spill %llu attempts -> "
      "%llu delivered, peak depth %llu, %llu lost\n",
      static_cast<unsigned long long>(overload.shed_attempts),
      static_cast<unsigned long long>(overload.shed_delivered),
      static_cast<unsigned long long>(overload.shed_shed),
      overload.shed_submits_per_sec / 1e6,
      static_cast<unsigned long long>(overload.spill_attempts),
      static_cast<unsigned long long>(overload.spill_delivered),
      static_cast<unsigned long long>(overload.spill_peak_depth),
      static_cast<unsigned long long>(overload.spill_lost_events));

  const ObservabilityResult obs = RunObservability(
      Partition(trace.events(), 1), flags.GetUint64("stripes"), events,
      flags.GetUint64("queue_capacity"), flags.GetUint64("max_batch"));
  std::printf(
      "# observability: %.1fM ev/s uninstrumented vs %.1fM instrumented "
      "(%.2f%% overhead); %llu recording TrySubmits -> %llu heap allocs; "
      "submit->apply p50/p99/max %llu/%llu/%llu ns over %llu samples, "
      "%llu queue-depth series points\n",
      obs.uninstrumented_events_per_sec / 1e6,
      obs.instrumented_events_per_sec / 1e6, obs.overhead_pct,
      static_cast<unsigned long long>(obs.record_attempts),
      static_cast<unsigned long long>(obs.record_allocs),
      static_cast<unsigned long long>(obs.latency_p50_ns),
      static_cast<unsigned long long>(obs.latency_p99_ns),
      static_cast<unsigned long long>(obs.latency_max_ns),
      static_cast<unsigned long long>(obs.latency_samples),
      static_cast<unsigned long long>(obs.series_points));

  const std::vector<ShardedRunResult> sharded =
      RunShardedScaling(trace.events(), flags.GetUint64("stripes"));
  for (const ShardedRunResult& r : sharded) {
    table.BeginRow() << "sharded-direct" << r.producers
                     << r.direct_events_per_sec
                     << static_cast<double>(r.events) / r.direct_events_per_sec
                     << 1.0;
    COUNTLIB_CHECK_OK(table.EndRow());
    table.BeginRow() << "sharded-pipeline" << r.producers
                     << r.sharded_events_per_sec
                     << static_cast<double>(r.events) / r.sharded_events_per_sec
                     << r.agg_factor;
    COUNTLIB_CHECK_OK(table.EndRow());
  }
  std::printf("# sharded: pipeline-vs-direct ratio");
  for (const ShardedRunResult& r : sharded) {
    std::printf(" %.2fx@%llup", r.ratio,
                static_cast<unsigned long long>(r.producers));
  }
  std::printf(
      " — strictly increasing (asserted on >=4 hardware threads), exact "
      "books\n");

  const NetResult net = RunNet(
      flags.GetUint64("net_events"), keys, skew, flags.GetUint64("stripes"),
      flags.GetUint64("net_connections"), flags.GetUint64("queue_capacity"),
      flags.GetUint64("max_batch"));
  std::printf(
      "# net: %llu events over %llu loopback connections -> %.2fM ev/s "
      "(in-process ceiling %.2fM), %llu frames, %.1f MB tx, %llu credit "
      "stalls, %llu lost, %llu unaccounted\n",
      static_cast<unsigned long long>(net.events),
      static_cast<unsigned long long>(net.connections),
      net.events_per_sec / 1e6, net.inproc_events_per_sec / 1e6,
      static_cast<unsigned long long>(net.frames_tx),
      static_cast<double>(net.bytes_tx) / 1e6,
      static_cast<unsigned long long>(net.credit_stalls),
      static_cast<unsigned long long>(net.lost_events),
      static_cast<unsigned long long>(net.unaccounted_events));

  const std::string json =
      ToJson(results, elastic, worker_steps, idle, bp, sat, autoscale,
             overload, obs, net, sharded, keys, skew);
  std::printf("%s\n", json.c_str());
  const std::string json_out = flags.GetString("json_out");
  if (!json_out.empty()) {
    std::ofstream f(json_out);
    f << json << "\n";
    if (!f.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
