/// \file pipeline_throughput.cc
/// \brief PIPELINE: ingest throughput — direct locked `Increment` vs the
/// async batched pipeline, plus elastic-scaling, idle-CPU, and
/// backpressure-cost scenarios.
///
/// Replays the same Zipf trace through (a) producer threads calling
/// `ConcurrentCounterStore::Increment` directly (a stripe-lock round trip
/// and a packed-slot deserialize/serialize per event) and (b) the
/// `IngestPipeline` (lock-free SPSC submit, background workers that
/// pre-aggregate duplicate keys and batch per stripe). Under Zipfian
/// traffic the batched path does one slot update per *distinct* key per
/// batch, which is where the win comes from even on a single core.
///
/// Three extra scenarios track the elastic-pipeline work:
///  - **elastic**: replays the trace while `SetWorkerCount` steps the
///    worker pool 1→4→2→4 mid-stream (the resize barrier is on the hot
///    path, so regressions show up as throughput loss).
///  - **idle**: a flushed, quiet pipeline is watched for one second; the
///    CV-parked workers must do near-zero busy passes (asserted) and only
///    a handful of timeout-bounded idle passes — this is the number that
///    collapsed when the yield/sleep poll was replaced by the eventcount.
///  - **backpressure**: tight-loop `TrySubmit` against a 2-entry queue;
///    the rejects/sec rate tracks the cost of the (allocation-free)
///    kPending path.
///
/// Emits a human table plus one machine-readable JSON document (stdout,
/// and `--json_out=FILE`, default `BENCH_pipeline_throughput.json` in the
/// working directory — run from the repo root for the cross-PR
/// trajectory). JSON schema (stable keys): `bench`, `keys`, `skew`,
/// `configs[] {mode, producers, events, elapsed_s, events_per_sec,
/// agg_factor}`, `elastic {producers, worker_steps[], events, elapsed_s,
/// events_per_sec, agg_factor}`, `idle {seconds, busy_passes, idle_passes,
/// wakeups, cpu_seconds}`, `backpressure {attempts, accepted, rejected,
/// elapsed_s, attempts_per_sec, rejects_per_sec}`.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analytics/concurrent_store.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

struct RunResult {
  std::string mode;
  uint64_t producers;
  uint64_t events;
  double elapsed_s;
  double events_per_sec;
  double agg_factor;  // events applied per store update (1.0 for direct)
};

struct IdleResult {
  double seconds;
  uint64_t busy_passes;
  uint64_t idle_passes;
  uint64_t wakeups;
  double cpu_seconds;
};

struct BackpressureResult {
  uint64_t attempts;
  uint64_t accepted;
  uint64_t rejected;
  double elapsed_s;
  double attempts_per_sec;
  double rejects_per_sec;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ProcessCpuSeconds() {
  struct rusage usage;
  COUNTLIB_CHECK_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  const auto to_s = [](const struct timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
}

analytics::ConcurrentCounterStore MakeStore(uint64_t stripes, uint64_t n_max) {
  return analytics::ConcurrentCounterStore::Make(stripes, CounterKind::kSampling,
                                                 16, n_max, 7)
      .ValueOrDie();
}

/// Splits the trace round-robin so every producer sees the same key skew.
std::vector<std::vector<pipeline::Event>> Partition(
    const std::vector<stream::KeyEvent>& events, uint64_t producers) {
  std::vector<std::vector<pipeline::Event>> parts(producers);
  for (auto& p : parts) p.reserve(events.size() / producers + 1);
  for (size_t i = 0; i < events.size(); ++i) {
    parts[i % producers].push_back(
        pipeline::Event{events[i].key, events[i].weight});
  }
  return parts;
}

RunResult RunDirect(const std::vector<std::vector<pipeline::Event>>& parts,
                    uint64_t stripes, uint64_t n_max) {
  auto store = MakeStore(stripes, n_max);
  uint64_t total = 0;
  for (const auto& p : parts) total += p.size();
  const double start = Now();
  std::vector<std::thread> threads;
  for (const auto& part : parts) {
    threads.emplace_back([&store, &part] {
      for (const pipeline::Event& e : part) {
        COUNTLIB_CHECK_OK(store.Increment(e.key, e.weight));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = Now() - start;
  return RunResult{"direct", parts.size(), total, elapsed,
                   static_cast<double>(total) / elapsed, 1.0};
}

RunResult RunPipeline(const std::vector<std::vector<pipeline::Event>>& parts,
                      uint64_t stripes, uint64_t n_max, uint64_t workers,
                      uint64_t queue_capacity, uint64_t max_batch,
                      const std::vector<uint64_t>& worker_steps = {}) {
  auto store = MakeStore(stripes, n_max);
  pipeline::PipelineOptions opt;
  opt.num_producers = parts.size();
  opt.num_workers = workers;
  opt.queue_capacity = queue_capacity;
  opt.max_batch = max_batch;
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
  uint64_t total = 0;
  for (const auto& p : parts) total += p.size();
  const double start = Now();
  std::vector<std::thread> threads;
  for (uint64_t p = 0; p < parts.size(); ++p) {
    threads.emplace_back([&ingest, &parts, p] {
      for (const pipeline::Event& e : parts[p]) {
        COUNTLIB_CHECK_OK(ingest->Submit(p, e.key, e.weight));
      }
    });
  }
  // The elastic scenario: step the worker pool while producers submit.
  // Each step re-partitions ring ownership at the join barrier; queued
  // events must all survive (checked below via events_applied).
  for (uint64_t n : worker_steps) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    COUNTLIB_CHECK_OK(ingest->SetWorkerCount(n));
  }
  for (auto& t : threads) t.join();
  COUNTLIB_CHECK_OK(ingest->Drain());
  const double elapsed = Now() - start;
  const pipeline::PipelineStats stats = ingest->Stats();
  COUNTLIB_CHECK_EQ(stats.events_applied, total);
  const double agg = stats.updates_applied == 0
                         ? 1.0
                         : static_cast<double>(stats.events_applied) /
                               static_cast<double>(stats.updates_applied);
  return RunResult{worker_steps.empty() ? "pipeline" : "pipeline-elastic",
                   parts.size(), total, elapsed,
                   static_cast<double>(total) / elapsed, agg};
}

/// Watches a flushed, quiet pipeline for `seconds`: with CV-parked workers
/// the busy-pass count must stay at zero and the idle passes bounded by
/// the sleep-timeout wake rate (~20/s per worker) — the old yield/sleep
/// backoff burned ~10k passes/s per worker here.
IdleResult RunIdle(double seconds, uint64_t workers) {
  auto store = MakeStore(16, 1u << 20);
  pipeline::PipelineOptions opt;
  opt.num_producers = workers;
  opt.num_workers = workers;
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
  for (uint64_t p = 0; p < workers; ++p) {
    for (uint64_t i = 0; i < 1000; ++i) {
      COUNTLIB_CHECK_OK(ingest->Submit(p, i, 1));
    }
  }
  COUNTLIB_CHECK_OK(ingest->Flush());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // settle

  const pipeline::PipelineStats before = ingest->Stats();
  const double cpu_before = ProcessCpuSeconds();
  const double start = Now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  const double elapsed = Now() - start;
  const double cpu = ProcessCpuSeconds() - cpu_before;
  const pipeline::PipelineStats after = ingest->Stats();
  COUNTLIB_CHECK_OK(ingest->Drain());

  IdleResult r;
  r.seconds = elapsed;
  r.busy_passes = after.batches_applied - before.batches_applied;
  r.idle_passes = after.idle_passes - before.idle_passes;
  r.wakeups = after.worker_wakeups - before.worker_wakeups;
  r.cpu_seconds = cpu;
  // The acceptance gate: a quiet second must be near-free. Zero batches
  // (nothing was submitted) and idle passes bounded well under the old
  // poll rate.
  COUNTLIB_CHECK_EQ(r.busy_passes, uint64_t{0});
  COUNTLIB_CHECK_LT(r.idle_passes, uint64_t{1000});
  return r;
}

/// Tight-loop TrySubmit against a tiny queue: the rejects/sec rate is a
/// direct read on the kPending path's cost (now allocation-free). The
/// accepted count is scheduler-dependent (the hammer loop deliberately
/// never backs off, so on few-core boxes the worker runs only on
/// preemption) — only the attempt/reject rates are meaningful here.
BackpressureResult RunBackpressure(double seconds) {
  auto store = MakeStore(4, 1u << 20);
  pipeline::PipelineOptions opt;
  opt.num_producers = 1;
  opt.num_workers = 1;
  opt.queue_capacity = 2;
  opt.max_batch = 1;
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
  BackpressureResult r{0, 0, 0, 0.0, 0.0, 0.0};
  const double start = Now();
  const double deadline = start + seconds;
  while (Now() < deadline) {
    for (int i = 0; i < 1024; ++i) {
      const Status st = ingest->TrySubmit(0, /*key=*/r.attempts & 63, 1);
      ++r.attempts;
      if (st.ok()) {
        ++r.accepted;
      } else {
        COUNTLIB_CHECK(st.IsPending()) << st.ToString();
        ++r.rejected;
      }
    }
  }
  r.elapsed_s = Now() - start;
  COUNTLIB_CHECK_OK(ingest->Drain());
  r.attempts_per_sec = static_cast<double>(r.attempts) / r.elapsed_s;
  r.rejects_per_sec = static_cast<double>(r.rejected) / r.elapsed_s;
  return r;
}

std::string ToJson(const std::vector<RunResult>& results,
                   const RunResult& elastic,
                   const std::vector<uint64_t>& worker_steps,
                   const IdleResult& idle, const BackpressureResult& bp,
                   uint64_t keys, double skew) {
  std::string out = "{\"bench\":\"pipeline_throughput\",\"keys\":" +
                    std::to_string(keys) + ",\"skew\":" + std::to_string(skew) +
                    ",\"configs\":[";
  char buf[512];
  // `extra` lands verbatim inside the object, after agg_factor — the
  // elastic entry uses it to carry its worker_steps array.
  const auto append_run = [&out, &buf](const RunResult& r,
                                       const std::string& extra = "") {
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"%s\",\"producers\":%llu,\"events\":%llu,"
                  "\"elapsed_s\":%.6f,\"events_per_sec\":%.1f,"
                  "\"agg_factor\":%.3f%s}",
                  r.mode.c_str(), static_cast<unsigned long long>(r.producers),
                  static_cast<unsigned long long>(r.events), r.elapsed_s,
                  r.events_per_sec, r.agg_factor, extra.c_str());
    out += buf;
  };
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ",";
    append_run(results[i]);
  }
  out += "],\"elastic\":";
  std::string steps = ",\"worker_steps\":[";
  for (size_t i = 0; i < worker_steps.size(); ++i) {
    if (i > 0) steps += ",";
    steps += std::to_string(worker_steps[i]);
  }
  steps += "]";
  append_run(elastic, steps);
  std::snprintf(buf, sizeof(buf),
                ",\"idle\":{\"seconds\":%.3f,\"busy_passes\":%llu,"
                "\"idle_passes\":%llu,\"wakeups\":%llu,\"cpu_seconds\":%.4f}",
                idle.seconds, static_cast<unsigned long long>(idle.busy_passes),
                static_cast<unsigned long long>(idle.idle_passes),
                static_cast<unsigned long long>(idle.wakeups),
                idle.cpu_seconds);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"backpressure\":{\"attempts\":%llu,\"accepted\":%llu,"
      "\"rejected\":%llu,\"elapsed_s\":%.4f,\"attempts_per_sec\":%.1f,"
      "\"rejects_per_sec\":%.1f}",
      static_cast<unsigned long long>(bp.attempts),
      static_cast<unsigned long long>(bp.accepted),
      static_cast<unsigned long long>(bp.rejected), bp.elapsed_s,
      bp.attempts_per_sec, bp.rejects_per_sec);
  out += buf;
  out += "}";
  return out;
}

int Main(int argc, const char* const* argv) {
  FlagParser flags("pipeline_throughput: direct locked ingest vs async batched pipeline");
  flags.AddUint64("keys", 10000, "distinct keys in the trace");
  flags.AddUint64("events", 1000000, "events per configuration");
  flags.AddDouble("skew", 1.0, "Zipf skew");
  flags.AddUint64("stripes", 16, "store stripes");
  flags.AddUint64("workers", 1, "pipeline drain threads");
  flags.AddUint64("queue_capacity", 8192, "per-producer queue capacity");
  flags.AddUint64("max_batch", 2048, "max events per pre-aggregated batch");
  flags.AddDouble("idle_seconds", 1.0, "quiet-pipeline observation window");
  flags.AddString("json_out", "BENCH_pipeline_throughput.json",
                  "write the JSON document to this file (empty to skip)");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t keys = flags.GetUint64("keys");
  const uint64_t events = flags.GetUint64("events");
  const double skew = flags.GetDouble("skew");

  auto trace = stream::Trace::GenerateZipf(keys, skew, events, 4242).ValueOrDie();
  std::printf("# PIPELINE: %llu events over %llu keys, Zipf skew %.2f\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(keys), skew);

  std::vector<RunResult> results;
  TableWriter table(&std::cout, {"mode", "producers", "events_per_sec",
                                 "elapsed_s", "agg_factor"});
  for (uint64_t producers : {uint64_t{1}, uint64_t{4}}) {
    const auto parts = Partition(trace.events(), producers);
    for (int mode = 0; mode < 2; ++mode) {
      RunResult r = mode == 0
                        ? RunDirect(parts, flags.GetUint64("stripes"), events)
                        : RunPipeline(parts, flags.GetUint64("stripes"), events,
                                      flags.GetUint64("workers"),
                                      flags.GetUint64("queue_capacity"),
                                      flags.GetUint64("max_batch"));
      table.BeginRow() << r.mode << r.producers << r.events_per_sec
                       << r.elapsed_s << r.agg_factor;
      COUNTLIB_CHECK_OK(table.EndRow());
      results.push_back(std::move(r));
    }
  }

  const std::vector<uint64_t> worker_steps = {4, 2, 4};
  const auto elastic_parts = Partition(trace.events(), 4);
  RunResult elastic = RunPipeline(
      elastic_parts, flags.GetUint64("stripes"), events, /*workers=*/1,
      flags.GetUint64("queue_capacity"), flags.GetUint64("max_batch"),
      worker_steps);
  table.BeginRow() << elastic.mode << elastic.producers
                   << elastic.events_per_sec << elastic.elapsed_s
                   << elastic.agg_factor;
  COUNTLIB_CHECK_OK(table.EndRow());

  const IdleResult idle = RunIdle(flags.GetDouble("idle_seconds"), 2);
  std::printf(
      "# idle: %.2fs quiet -> %llu busy passes, %llu idle passes, "
      "%llu wakeups, %.4fs cpu\n",
      idle.seconds, static_cast<unsigned long long>(idle.busy_passes),
      static_cast<unsigned long long>(idle.idle_passes),
      static_cast<unsigned long long>(idle.wakeups), idle.cpu_seconds);

  const BackpressureResult bp = RunBackpressure(0.25);
  std::printf(
      "# backpressure: %.1fM TrySubmit/s against a full queue "
      "(%.0f%% rejected, allocation-free kPending)\n",
      bp.attempts_per_sec / 1e6,
      100.0 * static_cast<double>(bp.rejected) /
          static_cast<double>(bp.attempts == 0 ? 1 : bp.attempts));

  const std::string json =
      ToJson(results, elastic, worker_steps, idle, bp, keys, skew);
  std::printf("%s\n", json.c_str());
  const std::string json_out = flags.GetString("json_out");
  if (!json_out.empty()) {
    std::ofstream f(json_out);
    f << json << "\n";
    if (!f.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
