/// \file pipeline_throughput.cc
/// \brief PIPELINE: ingest throughput — direct locked `Increment` vs the
/// async batched pipeline, single- and multi-producer.
///
/// Replays the same Zipf trace through (a) producer threads calling
/// `ConcurrentCounterStore::Increment` directly (a stripe-lock round trip
/// and a packed-slot deserialize/serialize per event) and (b) the
/// `IngestPipeline` (lock-free SPSC submit, background workers that
/// pre-aggregate duplicate keys and batch per stripe). Under Zipfian
/// traffic the batched path does one slot update per *distinct* key per
/// batch, which is where the win comes from even on a single core.
///
/// Emits a human table plus one machine-readable JSON document (stdout,
/// and `--json_out=FILE` for the BENCH_*.json trajectory).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analytics/concurrent_store.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

struct RunResult {
  std::string mode;
  uint64_t producers;
  uint64_t events;
  double elapsed_s;
  double events_per_sec;
  double agg_factor;  // events applied per store update (1.0 for direct)
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

analytics::ConcurrentCounterStore MakeStore(uint64_t stripes, uint64_t n_max) {
  return analytics::ConcurrentCounterStore::Make(stripes, CounterKind::kSampling,
                                                 16, n_max, 7)
      .ValueOrDie();
}

/// Splits the trace round-robin so every producer sees the same key skew.
std::vector<std::vector<pipeline::Event>> Partition(
    const std::vector<stream::KeyEvent>& events, uint64_t producers) {
  std::vector<std::vector<pipeline::Event>> parts(producers);
  for (auto& p : parts) p.reserve(events.size() / producers + 1);
  for (size_t i = 0; i < events.size(); ++i) {
    parts[i % producers].push_back(
        pipeline::Event{events[i].key, events[i].weight});
  }
  return parts;
}

RunResult RunDirect(const std::vector<std::vector<pipeline::Event>>& parts,
                    uint64_t stripes, uint64_t n_max) {
  auto store = MakeStore(stripes, n_max);
  uint64_t total = 0;
  for (const auto& p : parts) total += p.size();
  const double start = Now();
  std::vector<std::thread> threads;
  for (const auto& part : parts) {
    threads.emplace_back([&store, &part] {
      for (const pipeline::Event& e : part) {
        COUNTLIB_CHECK_OK(store.Increment(e.key, e.weight));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = Now() - start;
  return RunResult{"direct", parts.size(), total, elapsed,
                   static_cast<double>(total) / elapsed, 1.0};
}

RunResult RunPipeline(const std::vector<std::vector<pipeline::Event>>& parts,
                      uint64_t stripes, uint64_t n_max, uint64_t workers,
                      uint64_t queue_capacity, uint64_t max_batch) {
  auto store = MakeStore(stripes, n_max);
  pipeline::PipelineOptions opt;
  opt.num_producers = parts.size();
  opt.num_workers = workers;
  opt.queue_capacity = queue_capacity;
  opt.max_batch = max_batch;
  auto ingest = pipeline::IngestPipeline::Make(&store, opt).ValueOrDie();
  uint64_t total = 0;
  for (const auto& p : parts) total += p.size();
  const double start = Now();
  std::vector<std::thread> threads;
  for (uint64_t p = 0; p < parts.size(); ++p) {
    threads.emplace_back([&ingest, &parts, p] {
      for (const pipeline::Event& e : parts[p]) {
        COUNTLIB_CHECK_OK(ingest->Submit(p, e.key, e.weight));
      }
    });
  }
  for (auto& t : threads) t.join();
  COUNTLIB_CHECK_OK(ingest->Drain());
  const double elapsed = Now() - start;
  const pipeline::PipelineStats stats = ingest->Stats();
  COUNTLIB_CHECK_EQ(stats.events_applied, total);
  const double agg = stats.updates_applied == 0
                         ? 1.0
                         : static_cast<double>(stats.events_applied) /
                               static_cast<double>(stats.updates_applied);
  return RunResult{"pipeline", parts.size(), total, elapsed,
                   static_cast<double>(total) / elapsed, agg};
}

std::string ToJson(const std::vector<RunResult>& results,
                   uint64_t keys, double skew) {
  std::string out = "{\"bench\":\"pipeline_throughput\",\"keys\":" +
                    std::to_string(keys) + ",\"skew\":" + std::to_string(skew) +
                    ",\"configs\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    if (i > 0) out += ",";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"%s\",\"producers\":%llu,\"events\":%llu,"
                  "\"elapsed_s\":%.6f,\"events_per_sec\":%.1f,"
                  "\"agg_factor\":%.3f}",
                  r.mode.c_str(), static_cast<unsigned long long>(r.producers),
                  static_cast<unsigned long long>(r.events), r.elapsed_s,
                  r.events_per_sec, r.agg_factor);
    out += buf;
  }
  out += "]}";
  return out;
}

int Main(int argc, const char* const* argv) {
  FlagParser flags("pipeline_throughput: direct locked ingest vs async batched pipeline");
  flags.AddUint64("keys", 10000, "distinct keys in the trace");
  flags.AddUint64("events", 1000000, "events per configuration");
  flags.AddDouble("skew", 1.0, "Zipf skew");
  flags.AddUint64("stripes", 16, "store stripes");
  flags.AddUint64("workers", 1, "pipeline drain threads");
  flags.AddUint64("queue_capacity", 8192, "per-producer queue capacity");
  flags.AddUint64("max_batch", 2048, "max events per pre-aggregated batch");
  flags.AddString("json_out", "", "also write the JSON document to this file");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t keys = flags.GetUint64("keys");
  const uint64_t events = flags.GetUint64("events");
  const double skew = flags.GetDouble("skew");

  auto trace = stream::Trace::GenerateZipf(keys, skew, events, 4242).ValueOrDie();
  std::printf("# PIPELINE: %llu events over %llu keys, Zipf skew %.2f\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(keys), skew);

  std::vector<RunResult> results;
  TableWriter table(&std::cout, {"mode", "producers", "events_per_sec",
                                 "elapsed_s", "agg_factor"});
  for (uint64_t producers : {uint64_t{1}, uint64_t{4}}) {
    const auto parts = Partition(trace.events(), producers);
    for (int mode = 0; mode < 2; ++mode) {
      RunResult r = mode == 0
                        ? RunDirect(parts, flags.GetUint64("stripes"), events)
                        : RunPipeline(parts, flags.GetUint64("stripes"), events,
                                      flags.GetUint64("workers"),
                                      flags.GetUint64("queue_capacity"),
                                      flags.GetUint64("max_batch"));
      table.BeginRow() << r.mode << r.producers << r.events_per_sec
                       << r.elapsed_s << r.agg_factor;
      COUNTLIB_CHECK_OK(table.EndRow());
      results.push_back(std::move(r));
    }
  }

  const std::string json = ToJson(results, keys, skew);
  std::printf("%s\n", json.c_str());
  const std::string json_out = flags.GetString("json_out");
  if (!json_out.empty()) {
    std::ofstream f(json_out);
    f << json << "\n";
    if (!f.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
