/// \file space_tail.cc
/// \brief THM23: the doubly-exponential space tail.
///
/// Computes P(state bits > S) for the Morris counter *exactly* (forward DP
/// over the chain) and for the Nelson-Yu counter by Monte Carlo, and prints
/// the log-log-log structure: ln ln(1/tail) should grow roughly linearly in
/// S (Theorem 2.3's exp(-exp(C₂ S)) shape).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/counter_factory.h"
#include "sim/morris_exact_dist.h"
#include "sim/space_dist.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/math.h"

namespace countlib {
namespace {

int Main(int argc, const char* const* argv) {
  FlagParser flags("space_tail: P(state bits > S), exact DP + Monte Carlo");
  flags.AddUint64("n", 1u << 20, "increments");
  flags.AddUint64("trials", 2000, "Monte-Carlo trials for Nelson-Yu");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t n = flags.GetUint64("n");
  const uint64_t trials = flags.GetUint64("trials");

  // Exact tail of Morris(1): X concentrates at ~log2 n, bits at
  // ~log2 log2 n; each extra bit of space squares-off the tail.
  std::printf("# THM23 (exact, Morris a=1, n=%llu): P(bits(X) > S)\n",
              static_cast<unsigned long long>(n));
  {
    auto dist = sim::MorrisExactDistribution::Make(1.0, 256).ValueOrDie();
    dist.Step(n);
    TableWriter table(&std::cout, {"S_bits", "tail_prob", "ln_ln_inv_tail"});
    for (int s = 3; s <= 7; ++s) {
      const double tail = dist.SpaceTail(s);
      const double lll =
          tail > 0 && tail < 1 ? std::log(std::log(1.0 / tail)) : INFINITY;
      table.BeginRow() << s << tail << lll;
      COUNTLIB_CHECK_OK(table.EndRow());
    }
  }

  // Morris with the Theorem 1.2 parameterization: exact DP as well. Level
  // granularity is shown alongside bit granularity — one extra *bit*
  // doubles the level range, which is why the bit-tail collapses from 1 to
  // ~0 within two rows (the exp(-exp(S)) shape).
  std::printf("\n# THM23 (exact, Morris a=eps^2/(8 ln 1/delta), eps=0.3, "
              "delta=1e-2, n=100000)\n");
  {
    const double a = 0.3 * 0.3 / (8.0 * std::log(1e2));
    const uint64_t n_small = 100000;
    auto dist = sim::MorrisExactDistribution::Make(
                    a, static_cast<uint64_t>(std::ceil(Log1pBase(
                           a, 64.0 * static_cast<double>(n_small)))) +
                           64)
                    .ValueOrDie();
    dist.Step(n_small);
    TableWriter table(&std::cout, {"S_bits", "tail_prob", "ln_ln_inv_tail"});
    for (int s = 9; s <= 13; ++s) {
      const double tail = dist.SpaceTail(s);
      const double lll =
          tail > 0 && tail < 1 ? std::log(std::log(1.0 / tail)) : INFINITY;
      table.BeginRow() << s << tail << lll;
      COUNTLIB_CHECK_OK(table.EndRow());
    }
    // Level-granular view of the same tail: P(X > x) decays geometrically
    // per level, so each +1 bit of the register squares the decay away.
    std::printf("# level-granular: P(X > x) near the concentration point\n");
    TableWriter level_table(&std::cout, {"x_level", "tail_prob"});
    const uint64_t center = static_cast<uint64_t>(
        Log1pBase(a, static_cast<double>(n_small)));
    for (uint64_t x = center; x <= center + 60; x += 12) {
      double tail = 0;
      for (size_t i = x + 1; i < dist.pmf().size(); ++i) tail += dist.pmf()[i];
      level_table.BeginRow() << x << tail;
      COUNTLIB_CHECK_OK(level_table.EndRow());
    }
  }

  // Nelson-Yu: Monte-Carlo realized-bits histogram.
  std::printf("\n# THM23 (Monte Carlo, Nelson-Yu eps=0.2 delta=0.01, "
              "%llu trials): realized-bits distribution\n",
              static_cast<unsigned long long>(trials));
  {
    Accuracy acc{0.2, 0.01, n * 2};
    auto factory = [acc](uint64_t seed) {
      return MakeCounter(CounterKind::kNelsonYu, acc, seed);
    };
    auto dist = sim::MeasureSpaceDistribution(factory, n, trials, 99).ValueOrDie();
    auto probe = MakeCounter(CounterKind::kNelsonYu, acc, 1).ValueOrDie();
    TableWriter table(&std::cout, {"S_bits", "tail_prob"});
    for (int s = dist.MaxBits() - 4; s <= dist.MaxBits() + 1; ++s) {
      table.BeginRow() << s << dist.Tail(s);
      COUNTLIB_CHECK_OK(table.EndRow());
    }
    std::printf("# provisioned=%d bits, observed mean=%.2f max=%d — the tail "
                "above max is empirically zero at %llu trials, consistent "
                "with exp(-exp(S)) collapse\n",
                probe->StateBits(), dist.Mean(), dist.MaxBits(),
                static_cast<unsigned long long>(trials));
  }
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
