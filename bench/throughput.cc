/// \file throughput.cc
/// \brief PERF: increment throughput microbenchmarks (google-benchmark).
///
/// Measures the per-increment path and the geometric fast-forward path of
/// every counter, plus merge and the analytics store's
/// deserialize-update-serialize cycle. Not a paper artifact — it quantifies
/// the engineering claim in Remark 2.2 that queries/updates can use cheap
/// scratch registers.

#include <benchmark/benchmark.h>

#include "analytics/counter_store.h"
#include "baselines/csuros.h"
#include "baselines/exact_counter.h"
#include "core/merge.h"
#include "core/morris.h"
#include "core/morris_plus.h"
#include "core/nelson_yu.h"
#include "core/sampling_counter.h"

namespace countlib {
namespace {

const Accuracy kAcc{0.1, 0.01, uint64_t{1} << 30};

void BM_ExactIncrement(benchmark::State& state) {
  auto counter = ExactCounter::Make(uint64_t{1} << 40).ValueOrDie();
  for (auto _ : state) {
    counter.Increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_ExactIncrement);

void BM_MorrisIncrement(benchmark::State& state) {
  auto counter = MorrisCounter::FromAccuracy(kAcc, 42).ValueOrDie();
  for (auto _ : state) {
    counter.Increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_MorrisIncrement);

void BM_MorrisPlusIncrement(benchmark::State& state) {
  auto counter = MorrisPlusCounter::FromAccuracy(kAcc, 42).ValueOrDie();
  for (auto _ : state) {
    counter.Increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_MorrisPlusIncrement);

void BM_NelsonYuIncrement(benchmark::State& state) {
  auto counter = NelsonYuCounter::FromAccuracy(kAcc, 42).ValueOrDie();
  for (auto _ : state) {
    counter.Increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_NelsonYuIncrement);

void BM_SamplingIncrement(benchmark::State& state) {
  auto counter = SamplingCounter::FromAccuracy(kAcc, 42).ValueOrDie();
  for (auto _ : state) {
    counter.Increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_SamplingIncrement);

void BM_CsurosIncrement(benchmark::State& state) {
  auto counter = CsurosCounter::FromAccuracy(kAcc, 42).ValueOrDie();
  for (auto _ : state) {
    counter.Increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CsurosIncrement);

// Fast-forward: items/sec processed via IncrementMany (batch of 2^16).
template <typename CounterT>
void FastForwardLoop(benchmark::State& state, CounterT counter) {
  const uint64_t batch = uint64_t{1} << 16;
  for (auto _ : state) {
    counter.Reset();
    counter.IncrementMany(batch);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * batch));
}

void BM_MorrisFastForward(benchmark::State& state) {
  FastForwardLoop(state, MorrisCounter::FromAccuracy(kAcc, 42).ValueOrDie());
}
BENCHMARK(BM_MorrisFastForward);

void BM_NelsonYuFastForward(benchmark::State& state) {
  FastForwardLoop(state, NelsonYuCounter::FromAccuracy(kAcc, 42).ValueOrDie());
}
BENCHMARK(BM_NelsonYuFastForward);

void BM_SamplingFastForward(benchmark::State& state) {
  FastForwardLoop(state, SamplingCounter::FromAccuracy(kAcc, 42).ValueOrDie());
}
BENCHMARK(BM_SamplingFastForward);

void BM_SamplingMerge(benchmark::State& state) {
  auto a = SamplingCounter::FromAccuracy(kAcc, 1).ValueOrDie();
  auto b = SamplingCounter::FromAccuracy(kAcc, 2).ValueOrDie();
  a.IncrementMany(1u << 20);
  b.IncrementMany(1u << 20);
  for (auto _ : state) {
    auto merged = Merge(a, b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_SamplingMerge);

void BM_CounterStoreUpdate(benchmark::State& state) {
  auto store = analytics::CounterStore::MakeWithBitBudget(
                   CounterKind::kSampling, 18, uint64_t{1} << 24, 7)
                   .ValueOrDie();
  // Pre-create 4096 keys.
  for (uint64_t key = 0; key < 4096; ++key) {
    benchmark::DoNotOptimize(store.Increment(key, 1));
  }
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Increment(key & 4095, 1));
    ++key;
  }
}
BENCHMARK(BM_CounterStoreUpdate);

}  // namespace
}  // namespace countlib

BENCHMARK_MAIN();
