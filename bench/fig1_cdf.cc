/// \file fig1_cdf.cc
/// \brief Reproduces Figure 1 of the paper (§4).
///
/// For each algorithm — the Morris Counter and the simplified Algorithm 1
/// (sampling counter), both parameterized to 17 bits of state — run 5,000
/// trials; each trial draws N ~ Uniform[500000, 999999] and performs N
/// increments, recording the relative error |N-hat - N| / N. The output is
/// the empirical CDF of the relative error per algorithm: a row (x, y)
/// means "in x% of trials the relative error was y% or less" (the paper's
/// dot semantics).
///
/// Paper-expected shape: the two CDFs nearly coincide; max observed
/// relative error on the order of 2.4%.

#include <cstdio>
#include <iostream>

#include "core/counter_factory.h"
#include "stats/ecdf.h"
#include "stream/stream_runner.h"
#include "stream/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"

namespace countlib {
namespace {

stream::TrialReport RunArm(CounterKind kind, int state_bits, uint64_t lo,
                           uint64_t hi, uint64_t trials, uint64_t seed) {
  stream::CounterFactory factory = [=](uint64_t trial) {
    return MakeCounterForBits(kind, state_bits, hi,
                              seed + 0x9E3779B97F4A7C15ull * trial);
  };
  auto workload = stream::UniformCountWorkload::Make(lo, hi).ValueOrDie();
  stream::CountSampler sampler = [=](uint64_t trial) {
    Rng rng(seed ^ (trial * 0xD1B54A32D192ED03ull + 1));
    return workload.Sample(&rng);
  };
  return stream::RunTrials(factory, sampler, trials).ValueOrDie();
}

int Main(int argc, const char* const* argv) {
  FlagParser flags(
      "fig1_cdf: reproduce Figure 1 (empirical CDFs of relative error, "
      "Morris vs simplified Nelson-Yu at 17 bits)");
  flags.AddUint64("trials", 5000, "trials per algorithm (paper: 5000)");
  flags.AddUint64("lo", 500000, "minimum N (paper: 500000)");
  flags.AddUint64("hi", 999999, "maximum N (paper: 999999)");
  flags.AddInt64("bits", 17, "state budget in bits (paper: 17)");
  flags.AddUint64("seed", 20201006, "base RNG seed");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t trials = flags.GetUint64("trials");
  const int bits = static_cast<int>(flags.GetInt64("bits"));
  const uint64_t lo = flags.GetUint64("lo");
  const uint64_t hi = flags.GetUint64("hi");
  const uint64_t seed = flags.GetUint64("seed");

  std::printf("# FIG1: Morris vs simplified Nelson-Yu, %d-bit state, "
              "N ~ U[%llu, %llu], %llu trials/arm\n",
              bits, static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi),
              static_cast<unsigned long long>(trials));

  auto morris = RunArm(CounterKind::kMorris, bits, lo, hi, trials, seed);
  auto sampling = RunArm(CounterKind::kSampling, bits, lo, hi, trials, seed + 1);
  auto morris_ecdf = stats::Ecdf::Make(morris.relative_errors).ValueOrDie();
  auto sampling_ecdf = stats::Ecdf::Make(sampling.relative_errors).ValueOrDie();

  TableWriter table(&std::cout,
                    {"percentile", "morris_rel_err_pct", "simplified_ny_rel_err_pct"});
  for (int pct = 1; pct <= 100; ++pct) {
    const double q = pct / 100.0;
    table.BeginRow() << pct << 100.0 * morris_ecdf.Quantile(q)
                     << 100.0 * sampling_ecdf.Quantile(q);
    COUNTLIB_CHECK_OK(table.EndRow());
  }

  std::printf("# summary: morris max=%.3f%% median=%.3f%% | simplified-ny "
              "max=%.3f%% median=%.3f%% | KS distance=%.4f\n",
              100 * morris_ecdf.Max(), 100 * morris_ecdf.Quantile(0.5),
              100 * sampling_ecdf.Max(), 100 * sampling_ecdf.Quantile(0.5),
              morris_ecdf.KsDistance(sampling_ecdf));
  std::printf("# paper: curves nearly identical; max rel err ~2.37%% over "
              "5000 trials\n");
  return 0;
}

}  // namespace
}  // namespace countlib

int main(int argc, char** argv) { return countlib::Main(argc, argv); }
