#!/usr/bin/env python3
"""Shared infrastructure for countlib's repo linters (conclint, locktree).

One implementation of the pieces every linter here needs:

  Violation       the finding record every linter emits (path:line:rule).
  strip_code      blank comments and string/char literals out of source
                  lines while preserving line numbers and columns, and
                  return the comment text separately.
  load_allowlist  parse a ``path:line:rule`` suppression file.
  apply_allowlist filter findings through an allowlist and report stale
                  entries (entries that match nothing) as violations —
                  stale allowlist lines rot fast, so they fail the lint.
  collect_files   expand file/directory arguments into source files.

Allowlist format (shared by tools/conclint_allow.txt and
tools/locktree_allow.txt): one ``path:line:rule`` entry per line, path
repo-relative with POSIX slashes, ``#`` comments allowed. An entry
silences exactly one finding at that exact location; when the code moves,
the entry goes stale and the lint fails until it is re-anchored or
removed.
"""

import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path  # repo-relative
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(lines):
    """Returns lines with comments and string/char literals blanked out
    (replaced by spaces, preserving line numbers and column positions) and,
    separately, the comment text of each line. Good enough for the token
    scans the linters do: no raw strings or trigraphs in this codebase."""
    code_lines = []
    comment_lines = []
    in_block_comment = False
    for line in lines:
        code = []
        comment = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block_comment:
                if c == "*" and nxt == "/":
                    in_block_comment = False
                    comment.append("*/")
                    code.append("  ")
                    i += 2
                else:
                    comment.append(c)
                    code.append(" ")
                    i += 1
            elif c == "/" and nxt == "/":
                comment.append(line[i:])
                code.append(" " * (n - i))
                i = n
            elif c == "/" and nxt == "*":
                in_block_comment = True
                comment.append("/*")
                code.append("  ")
                i += 2
            elif c == '"' or c == "'":
                quote = c
                code.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        code.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        code.append(quote)
                        i += 1
                        break
                    code.append(" ")
                    i += 1
            else:
                code.append(c)
                i += 1
        code_lines.append("".join(code))
        comment_lines.append("".join(comment))
    return code_lines, comment_lines


def load_allowlist(path):
    """Parses `path` into a set of (file, line, rule) triples. Raises
    ValueError on a malformed entry."""
    entries = set()
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.rsplit(":", 2)
            if len(parts) != 3 or not parts[1].isdigit():
                raise ValueError(
                    f"{path}:{lineno}: malformed allowlist entry {raw!r} "
                    f"(want path:line:rule)")
            entries.add((parts[0], int(parts[1]), parts[2]))
    return entries


def apply_allowlist(violations, allow, allowlist_name):
    """Filters `violations` through the (file, line, rule) set `allow`.
    Returns the surviving list, with one extra Violation appended per
    stale allowlist entry (an entry that matched no finding).
    `allowlist_name` is the repo-relative file named in the stale-entry
    message."""
    used = set()
    reported = []
    for v in violations:
        key = (v.path, v.line, v.rule)
        if key in allow:
            used.add(key)
        else:
            reported.append(v)
    for entry in sorted(allow - used):
        reported.append(Violation(
            entry[0], entry[1], entry[2],
            f"stale allowlist entry (no matching finding) — remove it "
            f"from {allowlist_name}"))
    return reported


def collect_files(paths, extensions=SOURCE_EXTENSIONS):
    """Expands file/directory arguments (repo-relative or absolute) into a
    list of absolute source-file paths. Raises FileNotFoundError."""
    files = []
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isfile(absolute):
            files.append(absolute)
        elif os.path.isdir(absolute):
            for root, _, names in os.walk(absolute):
                for name in sorted(names):
                    if name.endswith(extensions):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(p)
    return files


def repo_relative(absolute):
    return os.path.relpath(absolute, REPO_ROOT).replace(os.sep, "/")
