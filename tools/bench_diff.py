#!/usr/bin/env python3
"""Compare a fresh BENCH_pipeline_throughput.json against the committed
baseline and flag regressions (the ROADMAP's cross-PR trend-tracking item).

The bench emits a stable schema; this tool walks both documents in
parallel and judges the metrics it understands, direction-aware:

  - rate metrics (``events_per_sec``, ``attempts_per_sec``): higher is
    better; a drop of more than ``--threshold`` (default 10%) is a
    regression.
  - cost metrics (``cpu_seconds``, ``wake_latency_s``): lower is better; a
    rise of more than ``--threshold`` is a regression, but only when the
    change also clears a small absolute floor — shared CI runners cannot
    time 1.5ms vs 1.7ms meaningfully.
  - invariant metrics (``lost_events``, ``reject_allocs``,
    ``invalid_slot_allocs``, ``busy_passes``, ``record_allocs``): must stay
    zero; any nonzero current value is a regression regardless of
    threshold.
  - ceiling metrics (``overhead_pct``): judged against a hard absolute
    ceiling, not against the baseline — telemetry overhead must stay under
    5% no matter what the (noise-prone) baseline measured.

Entries in ``configs[]`` are matched by (mode, producers). Everything else
(counts, elapsed times, worker steps) is context, not judged.

A section (or judged metric) present in the current document but absent
from the committed baseline — a freshly added bench scenario, e.g. the
``net`` section — is reported as a WARN row with a note instead of being
silently dropped or failing the run: the new numbers cannot regress
against nothing, and the note tells the author to refresh the baseline so
the next PR *is* judged.

Usage:
  tools/bench_diff.py --baseline bench/baselines/pipeline_throughput.json \
                      --current BENCH_pipeline_throughput.json
Exit status: 0 = no regressions, 1 = regressions found (suppress with
--warn-only, e.g. on noisy shared runners), 2 = bad invocation/inputs.
"""

import argparse
import json
import sys

RATE_KEYS = {"events_per_sec", "attempts_per_sec", "submits_per_sec"}
COST_KEYS = {"cpu_seconds", "wake_latency_s"}
ZERO_KEYS = {"lost_events", "reject_allocs", "invalid_slot_allocs",
             "busy_passes", "unaccounted_events", "record_allocs"}
# Absolute floors for cost metrics: ignore a relative rise that is smaller
# than this many seconds — timer noise, not a regression.
COST_FLOORS = {"cpu_seconds": 0.003, "wake_latency_s": 0.05}
# Hard absolute ceilings, judged independently of the baseline value: the
# current value must stay strictly below the ceiling.
CEILING_KEYS = {"overhead_pct": 5.0}

JUDGED_KEYS = RATE_KEYS | COST_KEYS | ZERO_KEYS | set(CEILING_KEYS)

NEW_SECTION_NOTE = ("not in baseline — refresh the committed baseline to "
                    "judge it")


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def contains_judged(node):
    """True when `node`'s subtree holds at least one judgeable metric."""
    if isinstance(node, dict):
        return any((key in JUDGED_KEYS and is_number(value)) or
                   contains_judged(value) for key, value in node.items())
    if isinstance(node, list):
        return any(contains_judged(e) for e in node)
    return False


def walk(baseline, current, path, rows):
    """Recursively pair up the two documents, collecting judged metrics."""
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in baseline:
            if key in current:
                walk(baseline[key], current[key], f"{path}.{key}", rows)
        for key in current:
            # A judged section/metric the baseline has never seen: WARN
            # with a note, never a hard error — a new bench scenario must
            # be able to land together with its baseline refresh.
            if key in baseline:
                continue
            if (key in JUDGED_KEYS and is_number(current[key])) or \
                    contains_judged(current[key]):
                rows.append((f"{path}.{key}", None, None, "WARN",
                             NEW_SECTION_NOTE))
        return
    if isinstance(baseline, list) and isinstance(current, list):
        # configs[] entries are keyed by (mode, producers); other lists
        # (worker_steps) are context and skipped.
        def entry_key(e):
            return (e.get("mode"), e.get("producers")) if isinstance(e, dict) \
                else None
        current_by_key = {entry_key(e): e for e in current
                          if entry_key(e) is not None}
        baseline_keys = {entry_key(e) for e in baseline}
        for entry in baseline:
            key = entry_key(entry)
            if key is not None and key in current_by_key:
                walk(entry, current_by_key[key],
                     f"{path}[{key[0]}/p{key[1]}]", rows)
        for key, entry in current_by_key.items():
            if key not in baseline_keys and contains_judged(entry):
                rows.append((f"{path}[{key[0]}/p{key[1]}]", None, None,
                             "WARN", NEW_SECTION_NOTE))
        return
    leaf = path.rsplit(".", 1)[-1]
    if not isinstance(baseline, (int, float)) or isinstance(baseline, bool):
        return
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        return
    if leaf in RATE_KEYS:
        rows.append(judge_rate(path, leaf, baseline, current))
    elif leaf in COST_KEYS:
        rows.append(judge_cost(path, leaf, baseline, current))
    elif leaf in ZERO_KEYS:
        rows.append(judge_zero(path, baseline, current))
    elif leaf in CEILING_KEYS:
        rows.append(judge_ceiling(path, leaf, baseline, current))


def judge_rate(path, leaf, base, cur):
    if base <= 0:
        return (path, base, cur, "skip", "baseline is zero")
    change = (cur - base) / base
    verdict = "REGRESSION" if change < -ARGS.threshold else "ok"
    return (path, base, cur, verdict, f"{change:+.1%}")


def judge_cost(path, leaf, base, cur):
    floor = COST_FLOORS.get(leaf, 0.0)
    if cur - base < floor:
        return (path, base, cur, "ok", "within absolute floor")
    if base <= 0:
        # Baseline measured as free; any above-floor cost is new.
        return (path, base, cur, "REGRESSION", f"+{cur - base:.4f}s")
    change = (cur - base) / base
    verdict = "REGRESSION" if change > ARGS.threshold else "ok"
    return (path, base, cur, verdict, f"{change:+.1%}")


def judge_zero(path, base, cur):
    if cur == 0:
        return (path, base, cur, "ok", "invariant holds")
    return (path, base, cur, "REGRESSION", "must stay zero")


def judge_ceiling(path, leaf, base, cur):
    ceiling = CEILING_KEYS[leaf]
    if cur < ceiling:
        return (path, base, cur, "ok", f"under ceiling {ceiling:g}")
    return (path, base, cur, "REGRESSION", f"ceiling is {ceiling:g}")


def main():
    global ARGS
    parser = argparse.ArgumentParser(
        description="diff BENCH_pipeline_throughput.json against a baseline")
    parser.add_argument("--baseline",
                        default="bench/baselines/pipeline_throughput.json")
    parser.add_argument("--current", default="BENCH_pipeline_throughput.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (noisy runners)")
    ARGS = parser.parse_args()

    try:
        with open(ARGS.baseline) as f:
            baseline = json.load(f)
        with open(ARGS.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot load inputs: {e}", file=sys.stderr)
        return 2

    rows = []
    walk(baseline, current, "$", rows)
    if not rows:
        print("bench_diff: no comparable metrics found (schema mismatch?)",
              file=sys.stderr)
        return 2

    width = max(len(r[0]) for r in rows)
    regressions = 0
    warnings = 0
    for path, base, cur, verdict, note in rows:
        if verdict == "REGRESSION":
            regressions += 1
        elif verdict == "WARN":
            warnings += 1
        base_s = f"{base:<14.6g}" if base is not None else f"{'-':<14}"
        cur_s = f"{cur:<14.6g}" if cur is not None else f"{'-':<14}"
        print(f"{path:<{width}}  base={base_s} cur={cur_s} "
              f"{verdict:<10} {note}")
    # Always end on an explicit one-line verdict, so a green run is
    # greppable in CI logs and a human skimming the step sees the outcome
    # without counting rows.
    if regressions == 0:
        verdict = "PASS"
    elif ARGS.warn_only:
        verdict = "WARN (not gating)"
    else:
        verdict = "FAIL"
    new_note = (f", {warnings} new section(s) awaiting a baseline"
                if warnings else "")
    print(f"\nbench_diff: {verdict} — {len(rows) - warnings} metrics judged, "
          f"{regressions} regression(s) at threshold {ARGS.threshold:.0%}"
          f"{new_note}")
    if regressions and not ARGS.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
