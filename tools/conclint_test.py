#!/usr/bin/env python3
"""Tests for tools/conclint.py: the mo-comment justification rules (same
line, preceding block, shared block over a contiguous run, multi-line
statements), the HOTPATH allocation scan and its body extent, the raw-park
token scan and its sanctioned files, allowlist handling (including stale
entries), and the CLI exit codes. Run directly (python3
tools/conclint_test.py) or via ctest; CI runs it in the static-analysis
lane.
"""

import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import conclint  # noqa: E402

CONCLINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "conclint.py")


def lint(text, path="src/x.cc"):
    return conclint.lint_text(path, text)


def rules(violations):
    return [v.rule for v in violations]


class MoCommentTest(unittest.TestCase):
    def test_bare_memory_order_is_flagged(self):
        vs = lint("void f() { a.load(std::memory_order_acquire); }\n")
        self.assertEqual(rules(vs), ["mo-comment"])
        self.assertEqual(vs[0].line, 1)

    def test_same_line_comment_passes(self):
        vs = lint("a.load(std::memory_order_acquire);  // mo: pairs with X\n")
        self.assertEqual(vs, [])

    def test_preceding_comment_block_passes(self):
        vs = lint("// mo: acquire — pairs with the release in Y\n"
                  "a.load(std::memory_order_acquire);\n")
        self.assertEqual(vs, [])

    def test_multi_line_comment_block_passes(self):
        vs = lint("// Longer explanation of the protocol at work here,\n"
                  "// mo: seq_cst — Dekker handshake with Drain.\n"
                  "a.fetch_add(1, std::memory_order_seq_cst);\n")
        self.assertEqual(vs, [])

    def test_comment_block_without_mo_tag_fails(self):
        vs = lint("// just prose, no justification tag\n"
                  "a.load(std::memory_order_acquire);\n")
        self.assertEqual(rules(vs), ["mo-comment"])

    def test_shared_block_covers_contiguous_run(self):
        vs = lint("// mo: relaxed x3 — independent stats cells\n"
                  "a.fetch_add(1, std::memory_order_relaxed);\n"
                  "b.fetch_add(1, std::memory_order_relaxed);\n"
                  "c.store(0, std::memory_order_relaxed);\n")
        self.assertEqual(vs, [])

    def test_run_broken_by_plain_statement_fails(self):
        # The non-memory-order statement ends the covered run: the site
        # after it needs its own justification.
        vs = lint("// mo: relaxed — covered\n"
                  "a.fetch_add(1, std::memory_order_relaxed);\n"
                  "DoSomethingElse();\n"
                  "b.fetch_add(1, std::memory_order_relaxed);\n")
        self.assertEqual(rules(vs), ["mo-comment"])
        self.assertEqual(vs[0].line, 4)

    def test_multi_line_statement_is_covered(self):
        vs = lint("// mo: relaxed — telemetry stamp\n"
                  "stamp_.store(Now(),\n"
                  "             std::memory_order_relaxed);\n")
        self.assertEqual(vs, [])

    def test_token_in_comment_only_is_ignored(self):
        vs = lint("// std::memory_order_relaxed is discussed here\nint x;\n")
        self.assertEqual(vs, [])

    def test_default_seq_cst_needs_no_comment(self):
        # Implicit ordering (no memory_order token) is out of scope.
        vs = lint("a.fetch_add(1);\n")
        self.assertEqual(vs, [])


class HotpathAllocTest(unittest.TestCase):
    def test_push_back_in_hotpath_is_flagged(self):
        vs = lint("// HOTPATH: submit probe\n"
                  "bool TryPush(const E& e) {\n"
                  "  buf_.push_back(e);\n"
                  "  return true;\n"
                  "}\n")
        self.assertEqual(rules(vs), ["hotpath-alloc"])
        self.assertEqual(vs[0].line, 3)

    def test_new_and_make_unique_are_flagged(self):
        vs = lint("// HOTPATH\n"
                  "void F() {\n"
                  "  auto* p = new int;\n"
                  "  auto q = std::make_unique<int>(1);\n"
                  "}\n")
        self.assertEqual(rules(vs), ["hotpath-alloc", "hotpath-alloc"])

    def test_string_construction_is_flagged(self):
        vs = lint("// HOTPATH\n"
                  "void F() {\n"
                  "  return std::string(\"oops\");\n"
                  "}\n")
        self.assertEqual(rules(vs), ["hotpath-alloc"])

    def test_clean_hotpath_passes(self):
        vs = lint("// HOTPATH: the drain step\n"
                  "uint64_t PopBatch(E* out, uint64_t max) {\n"
                  "  out[0] = buf_[head_ & mask_];\n"
                  "  return 1;\n"
                  "}\n")
        self.assertEqual(vs, [])

    def test_alloc_outside_tagged_body_is_not_flagged(self):
        vs = lint("// HOTPATH\n"
                  "void Fast() { x_ = 1; }\n"
                  "void Slow() { v_.push_back(1); }\n")
        self.assertEqual(vs, [])

    def test_untagged_function_may_allocate(self):
        vs = lint("void F() { v_.push_back(1); }\n")
        self.assertEqual(vs, [])

    def test_new_in_comment_or_string_is_ignored(self):
        vs = lint("// HOTPATH\n"
                  "void F() {\n"
                  "  // a new approach\n"
                  "  Log(\"new event\");\n"
                  "}\n")
        self.assertEqual(vs, [])


class RawParkTest(unittest.TestCase):
    def test_condition_variable_is_flagged(self):
        vs = lint("std::condition_variable cv_;\n")
        self.assertEqual(rules(vs), ["raw-park"])

    def test_std_mutex_and_guards_are_flagged(self):
        vs = lint("std::mutex mu_;\n"
                  "std::lock_guard<std::mutex> lock(mu_);\n")
        self.assertEqual(len(vs), 2)
        self.assertTrue(all(v.rule == "raw-park" for v in vs))

    def test_event_count_is_sanctioned(self):
        text = ("std::mutex mu_;\nstd::condition_variable cv_;\n"
                "cv_.notify_all();\n")
        self.assertEqual(lint(text, path="src/util/event_count.h"), [])

    def test_mutex_wrapper_is_sanctioned(self):
        self.assertEqual(lint("std::mutex mu_;\n",
                              path="src/util/mutex.h"), [])

    def test_countlib_mutex_is_fine(self):
        vs = lint("Mutex mu_;\nMutexLock lock(&mu_);\n")
        self.assertEqual(vs, [])

    def test_include_line_is_not_flagged(self):
        # <mutex> is still legitimately included for std::once_flag.
        vs = lint("#include <mutex>\nstd::once_flag once_;\n")
        self.assertEqual(vs, [])


class AllowlistTest(unittest.TestCase):
    def test_parse_and_roundtrip(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "allow.txt")
            with open(p, "w") as fh:
                fh.write("# comment\n\n"
                         "src/a.cc:3:raw-park  # trailing comment\n")
            self.assertEqual(conclint.load_allowlist(p),
                             {("src/a.cc", 3, "raw-park")})

    def test_malformed_entry_raises(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "allow.txt")
            with open(p, "w") as fh:
                fh.write("src/a.cc:notaline:raw-park\n")
            with self.assertRaises(ValueError):
                conclint.load_allowlist(p)

    def test_repo_allowlist_parses(self):
        repo_allow = os.path.join(os.path.dirname(CONCLINT),
                                  "conclint_allow.txt")
        conclint.load_allowlist(repo_allow)  # must not raise


class CliTest(unittest.TestCase):
    def run_cli(self, *args):
        return subprocess.run([sys.executable, CONCLINT, *args],
                              capture_output=True, text=True)

    def test_clean_tree_exits_zero(self):
        # The repo's own src/ must be conclint-clean with the committed
        # allowlist — the same gate CI applies.
        proc = self.run_cli()
        self.assertEqual(proc.returncode, 0,
                         msg=proc.stdout + proc.stderr)

    def test_seeded_violation_exits_one(self):
        with tempfile.TemporaryDirectory() as d:
            bad = os.path.join(d, "bad.cc")
            with open(bad, "w") as fh:
                fh.write("std::condition_variable cv_;\n"
                         "int f() { return a.load(std::memory_order_acquire); }\n")
            proc = self.run_cli(bad)
            self.assertEqual(proc.returncode, 1,
                             msg=proc.stdout + proc.stderr)
            self.assertIn("raw-park", proc.stdout)
            self.assertIn("mo-comment", proc.stdout)

    def test_allowlisted_violation_exits_zero(self):
        with tempfile.TemporaryDirectory() as d:
            bad = os.path.join(d, "bad.cc")
            with open(bad, "w") as fh:
                fh.write("std::condition_variable cv_;\n")
            rel = os.path.relpath(bad, conclint.REPO_ROOT).replace(
                os.sep, "/")
            allow = os.path.join(d, "allow.txt")
            with open(allow, "w") as fh:
                fh.write(f"{rel}:1:raw-park\n")
            proc = self.run_cli(bad, "--allowlist", allow)
            self.assertEqual(proc.returncode, 0,
                             msg=proc.stdout + proc.stderr)

    def test_stale_allowlist_entry_exits_one(self):
        with tempfile.TemporaryDirectory() as d:
            clean = os.path.join(d, "clean.cc")
            with open(clean, "w") as fh:
                fh.write("int x = 0;\n")
            allow = os.path.join(d, "allow.txt")
            with open(allow, "w") as fh:
                fh.write("src/nonexistent.cc:1:raw-park\n")
            proc = self.run_cli(clean, "--allowlist", allow)
            self.assertEqual(proc.returncode, 1,
                             msg=proc.stdout + proc.stderr)
            self.assertIn("stale allowlist entry", proc.stdout)

    def test_missing_path_exits_two(self):
        proc = self.run_cli("no/such/path")
        self.assertEqual(proc.returncode, 2,
                         msg=proc.stdout + proc.stderr)

    def test_malformed_allowlist_exits_two(self):
        with tempfile.TemporaryDirectory() as d:
            clean = os.path.join(d, "clean.cc")
            with open(clean, "w") as fh:
                fh.write("int x = 0;\n")
            allow = os.path.join(d, "allow.txt")
            with open(allow, "w") as fh:
                fh.write("garbage\n")
            proc = self.run_cli(clean, "--allowlist", allow)
            self.assertEqual(proc.returncode, 2,
                             msg=proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
