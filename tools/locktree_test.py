#!/usr/bin/env python3
"""Unit tests for tools/locktree.py — the whole-program lock-hierarchy and
blocking-contract analyzer. Fixtures are synthetic translation units fed
through `analyze_texts`, so every rule is exercised without touching the
real tree. Run directly or via ctest (locktree_py_test)."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lintlib
import locktree
from locktree import analyze_texts


def rules(violations):
    return [v.rule for v in violations]


def only(violations, rule):
    return [v for v in violations if v.rule == rule]


class HierarchyModelTest(unittest.TestCase):
    def test_leveled_member_mutex_recorded(self):
        model, violations = analyze_texts([("src/a.h", """
class Gadget {
 private:
  mutable Mutex mu_ LOCK_LEVEL(40);
};
""")])
        self.assertEqual(violations, [])
        self.assertEqual(len(model.mutexes), 1)
        decl = model.mutexes[0]
        self.assertEqual((decl.cls, decl.name, decl.level),
                         ("Gadget", "mu_", 40))

    def test_unleveled_mutex_flagged(self):
        _, violations = analyze_texts([("src/a.h", """
class Gadget {
  Mutex mu_;
};
""")])
        self.assertEqual(rules(violations), ["unleveled-mutex"])
        self.assertIn("LOCK_LEVEL", violations[0].message)

    def test_function_local_mutex_resolves(self):
        model, violations = analyze_texts([("src/a.cc", """
void Work() {
  Mutex local_mu LOCK_LEVEL(85);
  MutexLock lock(&local_mu);
}
""")])
        self.assertEqual(violations, [])
        self.assertEqual(model.mutexes[0].func, "Work")

    def test_unknown_acquire_target_flagged(self):
        _, violations = analyze_texts([("src/a.cc", """
void Work() {
  MutexLock lock(&mystery_);
}
""")])
        self.assertEqual(rules(violations), ["unknown-mutex"])
        self.assertIn("mystery_", violations[0].message)

    def test_struct_member_and_guarded_by_parse(self):
        model, violations = analyze_texts([("src/a.cc", """
struct SinkState {
  Mutex mu LOCK_LEVEL(90);
  LogSink sink GUARDED_BY(mu);
};
""")])
        self.assertEqual(violations, [])
        self.assertEqual(model.mutexes[0].cls, "SinkState")


class LockOrderTest(unittest.TestCase):
    def fixture(self, body):
        return [("src/a.h", """
class Pipe {
 public:
%s
 private:
  Mutex lo_ LOCK_LEVEL(10);
  Mutex hi_ LOCK_LEVEL(20);
};
""" % body)]

    def test_ascending_levels_clean(self):
        _, violations = analyze_texts(self.fixture("""
  void Up() {
    MutexLock a(&lo_);
    MutexLock b(&hi_);
  }
"""))
        self.assertEqual(violations, [])

    def test_descending_levels_flagged(self):
        _, violations = analyze_texts(self.fixture("""
  void Down() {
    MutexLock a(&hi_);
    MutexLock b(&lo_);
  }
"""))
        self.assertEqual(rules(violations), ["lock-order"])
        self.assertIn("strictly increasing", violations[0].message)

    def test_equal_levels_flagged(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Both() {
    MutexLock a(&m1_);
    MutexLock b(&m2_);
  }
  Mutex m1_ LOCK_LEVEL(10);
  Mutex m2_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(rules(violations), ["lock-order"])

    def test_self_reacquisition_flagged(self):
        _, violations = analyze_texts(self.fixture("""
  void Twice() {
    MutexLock a(&lo_);
    MutexLock b(&lo_);
  }
"""))
        self.assertEqual(rules(violations), ["lock-order"])
        self.assertIn("not reentrant", violations[0].message)

    def test_transitive_inversion_through_call(self):
        _, violations = analyze_texts(self.fixture("""
  void Outer() {
    MutexLock l(&hi_);
    Inner();
  }
  void Inner() {
    MutexLock l(&lo_);
  }
"""))
        self.assertEqual(rules(violations), ["lock-order"])
        self.assertIn("via call to 'Inner'", violations[0].message)

    def test_scope_exit_releases_lock(self):
        _, violations = analyze_texts(self.fixture("""
  void Seq() {
    {
      MutexLock a(&hi_);
    }
    MutexLock b(&lo_);
  }
"""))
        self.assertEqual(violations, [])

    def test_requires_on_definition_counts_as_held(self):
        _, violations = analyze_texts(self.fixture("""
  void Locked() REQUIRES(hi_) {
    MutexLock l(&lo_);
  }
"""))
        self.assertEqual(rules(violations), ["lock-order"])

    def test_requires_on_class_declaration_merged_across_files(self):
        # The .cc is parsed BEFORE the .h that carries the REQUIRES — the
        # merge happens at resolve time, so parse order must not matter.
        _, violations = analyze_texts([
            ("src/b.cc", """
#include "b.h"
void Pipe::DoLocked() {
  MutexLock l(&lo_);
}
"""),
            ("src/b.h", """
class Pipe {
 public:
  void DoLocked() REQUIRES(hi_);
 private:
  Mutex lo_ LOCK_LEVEL(10);
  Mutex hi_ LOCK_LEVEL(20);
};
"""),
        ])
        self.assertEqual(rules(violations), ["lock-order"])
        self.assertEqual(violations[0].path, "src/b.cc")


class LockCycleTest(unittest.TestCase):
    def test_cycle_reported_alongside_inversion(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Forward() {
    MutexLock a(&lo_);
    MutexLock b(&hi_);
  }
  void Backward() {
    MutexLock a(&hi_);
    MutexLock b(&lo_);
  }
  Mutex lo_ LOCK_LEVEL(10);
  Mutex hi_ LOCK_LEVEL(20);
};
""")])
        self.assertIn("lock-order", rules(violations))
        self.assertIn("lock-cycle", rules(violations))
        cyc = only(violations, "lock-cycle")[0]
        self.assertIn("cannot be allowlisted", cyc.message)


class ParkUnderLockTest(unittest.TestCase):
    def test_park_under_lock_flagged(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Wait() {
    MutexLock l(&mu_);
    ec_.ParkOne(epoch);
  }
  Mutex mu_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(rules(violations), ["park-under-lock"])
        self.assertIn("ParkOne", violations[0].message)

    def test_park_without_lock_clean(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Wait() {
    ec_.ParkUntil(epoch, deadline);
  }
};
""")])
        self.assertEqual(violations, [])

    def test_thread_join_under_lock_flagged(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Stop() {
    MutexLock l(&mu_);
    worker_.join();
  }
  Mutex mu_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(rules(violations), ["park-under-lock"])

    def test_free_function_named_join_not_blocking(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Merge() {
    MutexLock l(&mu_);
    join(left, right);
  }
  Mutex mu_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(violations, [])

    def test_blocking_contract_api_under_lock_flagged(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Push() {
    MutexLock l(&mu_);
    sink_.Flush();
  }
  Mutex mu_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(rules(violations), ["park-under-lock"])
        self.assertIn("blocking API", violations[0].message)

    def test_transitive_park_through_callee(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Holding() {
    MutexLock l(&mu_);
    Wait();
  }
  void Wait() {
    ec_.ParkOne(epoch);
  }
  Mutex mu_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(rules(violations), ["park-under-lock"])
        self.assertIn("Wait", violations[0].message)

    def test_lambda_does_not_inherit_held_locks(self):
        # The worker lambda RUNS on another thread: the spawn site holds
        # mu_, the lambda body does not.
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Spawn() {
    MutexLock l(&mu_);
    workers_.emplace_back([this] {
      ec_.ParkOne(epoch);
    });
  }
  Mutex mu_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(violations, [])

    def test_call_prefix_before_lambda_argument_is_seen(self):
        # ParkOne's own call must still be attributed to the enclosing
        # function even though a lambda argument splits the statement.
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  void Wait() {
    MutexLock l(&mu_);
    ec_.ParkOne(epoch, [this] { return ready_; }, deadline);
  }
  Mutex mu_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(rules(violations), ["park-under-lock"])


class HotpathTest(unittest.TestCase):
    def test_hotpath_may_take_leveled_lock(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  // HOTPATH
  bool TryFast() {
    MutexLock l(&mu_);
    return true;
  }
  Mutex mu_ LOCK_LEVEL(10);
};
""")])
        self.assertEqual(violations, [])

    def test_hotpath_direct_park_flagged(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  // HOTPATH
  bool TryFast() {
    ec_.ParkOne(epoch);
    return true;
  }
};
""")])
        self.assertEqual(rules(violations), ["hotpath-blocking"])
        self.assertIn("TryFast", violations[0].message)

    def test_hotpath_transitive_blocking_flagged(self):
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  // HOTPATH
  bool TryFast() {
    Slow();
    return true;
  }
  void Slow() {
    ec_.ParkUntil(epoch, deadline);
  }
};
""")])
        self.assertEqual(rules(violations), ["hotpath-blocking"])

    def test_tag_binds_only_to_next_function(self):
        # Park in the function AFTER the tagged one is not a hotpath issue.
        _, violations = analyze_texts([("src/a.h", """
class Pipe {
  // HOTPATH
  bool TryFast() {
    return true;
  }
  void Wait() {
    ec_.ParkOne(epoch);
  }
};
""")])
        self.assertEqual(violations, [])


class ResolutionTest(unittest.TestCase):
    def test_typed_receiver_disambiguates_same_named_methods(self):
        # p_ is a Plain; Plain::Touch acquires nothing, so Locky::Touch's
        # low-level acquire must NOT contaminate the call site.
        _, violations = analyze_texts([("src/a.h", """
class Locky {
 public:
  void Touch() {
    MutexLock l(&mu_);
  }
  Mutex mu_ LOCK_LEVEL(10);
};
class Plain {
 public:
  void Touch() {}
};
class User {
 public:
  void Use() {
    MutexLock l(&hi_);
    p_.Touch();
  }
  Plain p_;
  Mutex hi_ LOCK_LEVEL(20);
};
""")])
        self.assertEqual(violations, [])

    def test_untyped_receiver_unions_candidates(self):
        # Without a typed receiver the analyzer stays conservative: the
        # acquiring overload is still a candidate, so the inversion fires.
        _, violations = analyze_texts([("src/a.h", """
class Locky {
 public:
  void Touch() {
    MutexLock l(&mu_);
  }
  Mutex mu_ LOCK_LEVEL(10);
};
class User {
 public:
  void Use() {
    MutexLock l(&hi_);
    mystery_.Touch();
  }
  Mutex hi_ LOCK_LEVEL(20);
};
""")])
        self.assertEqual(rules(violations), ["lock-order"])

    def test_include_visibility_prunes_method_candidates(self):
        # src/use.cc includes near.h but not far.h: Far::Poke cannot be the
        # callee, so its low-level acquire must not leak into use.cc.
        _, violations = analyze_texts([
            ("src/far.h", """
class Far {
 public:
  void Poke() {
    MutexLock l(&far_mu_);
  }
  Mutex far_mu_ LOCK_LEVEL(5);
};
"""),
            ("src/near.h", """
class Near {
 public:
  void Poke() {}
};
"""),
            ("src/use.cc", """
#include "near.h"
struct Holder {
  void Run() {
    MutexLock l(&mu_);
    helper_.Poke();
  }
  Mutex mu_ LOCK_LEVEL(50);
};
"""),
        ])
        self.assertEqual(violations, [])

    def test_arity_prunes_overloads(self):
        # Only the 2-arg Work overload locks; the call passes one argument,
        # so it must resolve to the 1-arg overload and stay clean.
        _, violations = analyze_texts([("src/a.h", """
class Ov {
 public:
  void Work(int a, int b) {
    MutexLock l(&lo_);
  }
  void Work(int a) {}
  Mutex lo_ LOCK_LEVEL(10);
};
class OvUser {
 public:
  void Run() {
    MutexLock l(&user_mu_);
    o_.Work(1);
  }
  Ov o_;
  Mutex user_mu_ LOCK_LEVEL(20);
};
""")])
        self.assertEqual(violations, [])

    def test_member_of_typed_local_receiver_resolves(self):
        model, violations = analyze_texts([("src/a.h", """
struct Stripe {
  Mutex mu LOCK_LEVEL(80);
};
class Store {
 public:
  void Bump() {
    Stripe& s = Pick();
    MutexLock l(&s.mu);
  }
  Stripe& Pick();
};
""")])
        self.assertEqual(violations, [])
        bump = next(f for f in model.functions if f.name == "Bump")
        self.assertEqual(bump.acquires[0].decl.cls, "Stripe")


class CliTest(unittest.TestCase):
    CLEAN = """
class Pipe {
 public:
  void Up() {
    MutexLock a(&lo_);
    MutexLock b(&hi_);
  }
 private:
  Mutex lo_ LOCK_LEVEL(10);
  Mutex hi_ LOCK_LEVEL(20);
};
"""
    INVERTED = CLEAN.replace("MutexLock a(&lo_)", "MutexLock a(&hi_)") \
                    .replace("MutexLock b(&hi_)", "MutexLock b(&lo_)")
    CYCLIC = """
class Pipe {
  void Forward() {
    MutexLock a(&lo_);
    MutexLock b(&hi_);
  }
  void Backward() {
    MutexLock a(&hi_);
    MutexLock b(&lo_);
  }
  Mutex lo_ LOCK_LEVEL(10);
  Mutex hi_ LOCK_LEVEL(20);
};
"""

    def run_main(self, source, allow_text=None, extra_args=()):
        with tempfile.TemporaryDirectory() as d:
            src = os.path.join(d, "fixture.h")
            with open(src, "w", encoding="utf-8") as fh:
                fh.write(source)
            argv = ["--clang=off", *extra_args]
            if allow_text is not None:
                allow = os.path.join(d, "allow.txt")
                rel = lintlib.repo_relative(src)
                with open(allow, "w", encoding="utf-8") as fh:
                    fh.write(allow_text.replace("@SRC@", rel))
                argv += ["--allowlist", allow]
            else:
                argv += ["--allowlist", os.path.join(d, "missing.txt")]
            argv.append(src)
            return locktree.main(argv)

    def find_line(self, source, needle, offset=0):
        for i, line in enumerate(source.splitlines(), 1):
            if needle in line:
                return i + offset
        raise AssertionError(f"{needle!r} not in fixture")

    def test_clean_tree_exits_zero(self):
        self.assertEqual(self.run_main(self.CLEAN), 0)

    def test_violation_exits_one(self):
        self.assertEqual(self.run_main(self.INVERTED), 1)

    def test_allowlisted_violation_exits_zero(self):
        line = self.find_line(self.INVERTED, "MutexLock b(&lo_)")
        self.assertEqual(
            self.run_main(self.INVERTED,
                          allow_text=f"@SRC@:{line}:lock-order\n"), 0)

    def test_stale_allowlist_entry_exits_one(self):
        self.assertEqual(
            self.run_main(self.CLEAN, allow_text="@SRC@:999:lock-order\n"), 1)

    def test_lock_cycle_cannot_be_allowlisted(self):
        # Even with every finding's location allowlisted, the cycle fails
        # the run (and the entries for it are reported as unusable).
        allow = "\n".join(f"@SRC@:{i}:lock-cycle" for i in range(1, 20))
        allow += "\n" + "\n".join(f"@SRC@:{i}:lock-order"
                                  for i in range(1, 20)) + "\n"
        self.assertEqual(self.run_main(self.CYCLIC, allow_text=allow), 1)

    def test_missing_path_exits_two(self):
        self.assertEqual(
            locktree.main(["--clang=off", "/nonexistent/nope"]), 2)

    def test_malformed_allowlist_exits_two(self):
        self.assertEqual(
            self.run_main(self.CLEAN, allow_text="not-a-valid-entry\n"), 2)

    def test_dump_prints_hierarchy(self):
        import contextlib
        import io
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = self.run_main(self.CLEAN, extra_args=("--dump",))
        self.assertEqual(code, 0)
        self.assertIn("level  10", out.getvalue())
        self.assertIn("Pipe::lo_", out.getvalue())


class SharedInfraTest(unittest.TestCase):
    def test_locktree_uses_lintlib(self):
        self.assertIs(locktree.load_allowlist, lintlib.load_allowlist)
        self.assertIs(locktree.strip_code, lintlib.strip_code)
        self.assertIs(locktree.Violation, lintlib.Violation)


if __name__ == "__main__":
    unittest.main()
