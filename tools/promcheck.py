#!/usr/bin/env python3
"""Validate a Prometheus text-exposition dump produced by countlib's obs
exporter (obs::ToPrometheusText), e.g. the one example_pipeline_ingest
writes with --metrics_out. CI runs this over the example's dump before
uploading it as an artifact, so a malformed scrape or a violated
must-stay-zero invariant fails the job, not the dashboard.

Checks:
  - every non-comment line parses as ``name value`` or
    ``name{label="v",...} value`` with a finite numeric value;
  - metric names match the Prometheus grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``);
  - every sample is preceded by a ``# TYPE`` declaration for its family
    (histogram ``_bucket``/``_sum``/``_count`` samples belong to the base
    name), and no family is declared twice;
  - histograms are well-formed: cumulative bucket counts never decrease as
    ``le`` rises, a ``+Inf`` bucket exists, and it equals ``_count``;
  - must-stay-zero metrics read exactly zero when present (the pipeline's
    drop counter, the autoscaler's resize-error counter, and the
    shed-accounting imbalance gauge); ``--require`` names must be present.

Usage:
  tools/promcheck.py metrics.prom [--require countlib_pipeline_events_applied_total]

Exit status: 0 = valid, 1 = violations found, 2 = bad invocation/input.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name, optional {labels}, whitespace, value. Label values in our exporter
# never contain escaped quotes, so a non-greedy brace match is enough.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*?\})?\s+(\S+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$")
LE_RE = re.compile(r'le="([^"]*)"')

MUST_BE_ZERO = (
    "countlib_pipeline_events_dropped_total",
    "countlib_autoscaler_resize_errors_total",
    "countlib_pipeline_unaccounted_events",
)


def family_of(name):
    """Maps a histogram series name to its declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text, require=()):
    """Returns a list of violation strings (empty = the dump is valid)."""
    errors = []
    types = {}          # family -> declared type
    values = {}         # plain sample name -> float value
    buckets = {}        # family -> list of (le_float, le_raw, count)
    counts = {}         # family -> _count value

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m:
                name, kind = m.group(1), m.group(2)
                if name in types:
                    errors.append(f"line {lineno}: duplicate # TYPE for {name}")
                types[name] = kind
            # Other comments (# HELP, free text) are legal and ignored.
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, labels, raw_value = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
            continue
        try:
            value = float(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {raw_value!r} "
                          f"for {name}")
            continue
        if math.isnan(value) or math.isinf(value):
            errors.append(f"line {lineno}: non-finite value for {name}")
            continue
        family = family_of(name)
        if family not in types:
            errors.append(f"line {lineno}: sample {name} has no preceding "
                          f"# TYPE {family}")
        if name.endswith("_bucket") and labels:
            le = LE_RE.search(labels)
            if le is None:
                errors.append(f"line {lineno}: bucket without le label: "
                              f"{line!r}")
                continue
            raw_le = le.group(1)
            le_value = math.inf if raw_le == "+Inf" else float(raw_le)
            buckets.setdefault(family, []).append((le_value, raw_le, value))
        elif name.endswith("_count") and family in types \
                and types[family] == "histogram":
            counts[family] = value
        else:
            values[name] = value

    for family, entries in sorted(buckets.items()):
        entries.sort(key=lambda e: e[0])
        last = -1.0
        for le_value, raw_le, count in entries:
            if count < last:
                errors.append(f"{family}: bucket le={raw_le} count {count:g} "
                              f"below previous {last:g} (not cumulative)")
            last = count
        if not entries or not math.isinf(entries[-1][0]):
            errors.append(f"{family}: no le=\"+Inf\" bucket")
        elif family in counts and entries[-1][2] != counts[family]:
            errors.append(f"{family}: +Inf bucket {entries[-1][2]:g} != "
                          f"_count {counts[family]:g}")
        if family in types and types[family] != "histogram":
            errors.append(f"{family}: has buckets but TYPE is "
                          f"{types[family]}")

    for name in MUST_BE_ZERO:
        if name in values and values[name] != 0:
            errors.append(f"{name}: must stay zero, reads {values[name]:g}")

    for name in require:
        if name not in values and family_of(name) not in types:
            errors.append(f"required metric {name} is missing")

    return errors


def main():
    parser = argparse.ArgumentParser(
        description="validate a countlib Prometheus text dump")
    parser.add_argument("file", help="the .prom text file to validate")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this metric is present "
                             "(repeatable)")
    args = parser.parse_args()

    try:
        with open(args.file) as f:
            text = f.read()
    except OSError as e:
        print(f"promcheck: cannot read {args.file}: {e}", file=sys.stderr)
        return 2
    if not text.strip():
        print(f"promcheck: {args.file} is empty", file=sys.stderr)
        return 2

    errors = check(text, require=args.require)
    for err in errors:
        print(f"promcheck: {err}")
    families = len({family_of(n) for n in re.findall(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", text, flags=re.M)})
    print(f"promcheck: {args.file}: {families} metric families, "
          f"{len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
