#!/usr/bin/env python3
"""locktree: countlib's whole-program lock-hierarchy and blocking-contract
analyzer. Clang's thread-safety analysis is function-local — it proves each
function honors its GUARDED_BY/REQUIRES contracts but cannot see that two
functions acquire two mutexes in opposite orders, or that a park is
reachable four calls below a held lock. locktree closes that gap: it builds
the global mutex-acquisition graph and the transitive call graph over src/
and enforces three whole-program contracts.

Rules (names are stable; the allowlist references them):

  unleveled-mutex    Every ``countlib::Mutex`` declaration must carry a
                     ``LOCK_LEVEL(n)`` annotation (util/thread_annotations.h).
                     The level table lives in docs/concurrency.md; the
                     hierarchy invariant is "while holding a level-L mutex,
                     acquire only strictly greater levels".

  unknown-mutex      A ``MutexLock lock(&expr);`` site whose mutex could not
                     be resolved to a declaration (see Resolution below).
                     Unresolved sites are unauditable, so they fail.

  lock-order         An acquisition (direct, or transitive through the call
                     graph) of mutex B while mutex A is held, where
                     level(B) <= level(A). Equal levels are an inversion
                     too: two same-level mutexes may never nest, and
                     A == B is a self-deadlock on this non-reentrant Mutex.

  lock-cycle         A cycle in the mutex-acquisition graph. With every
                     edge level-increasing this cannot happen; the check
                     exists so allowlisted inversions can never silently
                     combine into a deadlockable cycle — cycles are not
                     allowlistable.

  park-under-lock    A blocking call — ``EventCount::ParkOne``/``ParkUntil``,
                     ``std::thread::join``, or one of the blocking pipeline
                     APIs (Submit, Flush, Drain, AcquireProducerSlot) — is
                     reachable, directly or transitively, while any
                     countlib::Mutex is held. Parking under a lock turns a
                     bounded critical section into an unbounded one and is
                     one missed notify away from deadlock.

  hotpath-blocking   A function tagged ``// HOTPATH`` (conclint already
                     bans allocation there) transitively reaches a blocking
                     call. The hot path may take leveled locks (that is
                     governed by lock-order) but may never sleep.

Engine: a self-contained syntactic analysis built on tools/lintlib.py's
strip_code — it tracks brace scopes, class/function/lambda contexts,
MutexLock lifetimes (RAII release at scope exit), and REQUIRES annotations,
then runs a fixpoint over a name-resolved call graph. When the python
``clang`` bindings and a ``compile_commands.json`` are available (the CI
static-analysis lane installs the libclang wheel), an AST cross-check pass
additionally verifies that every LOCK_LEVEL annotation survives into the
clang AST as an ``annotate("countlib::lock_level=N")`` attribute and that
the AST sees no countlib::Mutex field the syntactic table missed
(rules clang-unleveled / clang-level-mismatch). The syntactic engine is
authoritative; the AST pass is a consistency check, so the tool runs on
any toolchain.

Resolution of ``MutexLock lock(&expr)`` / ``REQUIRES(expr)`` sites, in
order: (1) a member of the enclosing method's class; (2) a member of the
receiver's type when the receiver is a local reference or a member with a
parseable type (``Stripe& stripe = ...; ... &stripe.mu``); (3) a local
mutex declared in the enclosing function (lambdas see the enclosing
function's locals — they capture by reference); (4) the unique declaration
with that name visible through the ``#include`` graph; (5) the unique
declaration with that name anywhere in the linted set. Anything else is
unknown-mutex.

Known limits (deliberate, documented in docs/concurrency.md): calls
through std::function/function pointers are invisible (the runtime TSAN
lock-hierarchy test covers the gauge-callback edges), lambdas are analyzed
as separate functions and never inherit the creating scope's held set
(they may outlive it), and templates are analyzed as written, not per
instantiation.

Allowlist: ``tools/locktree_allow.txt``, one ``path:line:rule`` entry per
line — format, matching, and stale-entry discipline shared with conclint
via tools/lintlib.py. lock-cycle findings are never allowlistable.

Usage:
  tools/locktree.py [paths...] [--allowlist tools/locktree_allow.txt]
                    [--dump] [--clang {auto,on,off}]
                    [--compile-commands build]

Exit status: 0 = clean, 1 = violations found, 2 = bad invocation.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lintlib import (REPO_ROOT, Violation, apply_allowlist, collect_files,
                     load_allowlist, repo_relative, strip_code)

# Blocking primitives: a direct call to one of these is a blocking call no
# matter what the receiver resolves to.
PARK_PRIMITIVES = ("ParkOne", "ParkUntil")
# std::thread::join — only counted as a method call (obj.join()).
JOIN_METHOD = "join"
# Blocking-by-contract pipeline APIs (docs/concurrency.md): calls to these
# names count as blocking even when the callee's body is outside the
# linted set (partial runs, fixture tests).
BLOCKING_CONTRACT_METHODS = ("Submit", "Flush", "Drain",
                             "AcquireProducerSlot")

# Call-shaped tokens that are never calls we care about.
CALL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "static_assert", "defined", "noexcept", "assert",
    "MutexLock", "LOCK_LEVEL", "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES",
    "ACQUIRE", "RELEASE", "EXCLUDES", "CAPABILITY", "SCOPED_CAPABILITY",
    "COUNTLIB_RETURN_NOT_OK", "COUNTLIB_ASSIGN_OR_RETURN",
))

SCOPE_KEYWORDS = frozenset(("if", "for", "while", "switch", "catch", "else",
                            "do", "try"))

MUTEX_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s*(?:LOCK_LEVEL\s*\(\s*(\d+)\s*\))?\s*$")
ACQUIRE_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*&\s*([\w.>\-\[\]]+)\s*\)")
CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*(?:\[[^\[\]]*\]\s*)?(?:\.|->)\s*)?"
    r"([A-Za-z_]\w*)\s*\(")
REQUIRES_RE = re.compile(r"\bREQUIRES\s*\(([^()]*)\)")
LOCAL_REF_RE = re.compile(
    r"\b(?:\w+::)*([A-Z]\w*)\s*[&*]{1,2}\s*(\w+)\s*[=:;,)]")
TEMPLATE_MEMBER_RE = re.compile(
    r"<\s*(?:\w+::)*([A-Z]\w*)(?:\[\])?\s*>+\s+(\w+)\b")
PLAIN_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+|const\s+|static\s+)*(?:\w+::)*([A-Z]\w*)"
    r"\s*[&*]?\s+(\w+)\s*$")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
HOTPATH_TAG_RE = re.compile(r"^\s*//+\s*HOTPATH\b")
LAMBDA_INTRO_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^{}]*\))?\s*"
    r"(?:mutable\b|noexcept\b|constexpr\b|->\s*[\w:<>&*,\s]+)*\s*$")
CLASS_HEAD_RE = re.compile(
    r"^(?:template\s*<[^{}]*>\s*)?(?:class|struct|union)\b")
ENUM_RE = re.compile(r"\benum\b")
IDENT_RE = re.compile(r"[A-Za-z_][\w:~]*$")


class MutexDecl:
    """One ``Mutex name LOCK_LEVEL(n);`` declaration site."""

    def __init__(self, path, line, name, cls, func, level):
        self.path = path
        self.line = line
        self.name = name
        self.cls = cls      # innermost enclosing class, or None
        self.func = func    # enclosing function qual-name for locals, or None
        self.level = level  # int, or None when unleveled

    @property
    def display(self):
        owner = self.cls or (self.func and f"{self.func}()") or None
        return f"{owner}::{self.name}" if owner else self.name

    def __repr__(self):
        return f"{self.display}@{self.path}:{self.line}"


class Site:
    """An acquisition or call site inside a function body."""

    def __init__(self, line, held):
        self.line = line
        self.held = tuple(held)  # raw exprs at parse time; MutexDecls after
        #                          resolve()


class AcquireSite(Site):
    def __init__(self, line, held, expr):
        super().__init__(line, held)
        self.expr = expr     # raw text inside MutexLock(&...)
        self.decl = None     # resolved MutexDecl


class CallSite(Site):
    def __init__(self, line, held, obj, name, arity=None):
        super().__init__(line, held)
        self.obj = obj       # receiver identifier, or None
        self.name = name     # callee identifier
        self.arity = arity   # argument count, or None when unparseable


class FunctionDef:
    def __init__(self, path, cls, name, header_line, is_lambda=False):
        self.path = path
        self.cls = cls            # class name, or None
        self.name = name          # unqualified
        self.header_line = header_line  # 0-based line of the header start
        self.is_lambda = is_lambda
        self.acquires = []        # [AcquireSite]
        self.calls = []           # [CallSite]
        self.requires = []        # raw mutex names from REQUIRES(...)
        self.required_decls = []  # resolved MutexDecls
        self.local_types = {}     # var -> type name (reference locals)
        self.local_mutexes = {}   # name -> MutexDecl (function-local)
        self.arity_min = None     # parameter-count range, or None unknown
        self.arity_max = None
        self.hotpath = False
        # Filled by the fixpoint passes:
        self.may_acquire = set()  # transitive set of MutexDecls
        self.blocking = None      # (kind, line, what) witness, or None

    @property
    def qual(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


class Model:
    def __init__(self):
        self.mutexes = []           # [MutexDecl]
        self.functions = []         # [FunctionDef]
        self.includes = {}          # path -> set(paths) (direct)
        self.requires_decls = {}    # (cls, method) -> [mutex names]
        self.hotpath_tags = []      # [(path, 0-based line)]
        self.class_members = {}     # cls -> {name: MutexDecl}
        self.member_types = {}      # cls -> {member: type name}
        self.class_files = {}       # cls -> set(paths declaring it)
        self.visible = {}           # path -> transitive include closure
        self.paths = set()
        self.edges = []


class _Scope:
    def __init__(self, kind, name, paren_base, function):
        self.kind = kind            # namespace|class|function|lambda|block
        self.name = name
        self.paren_base = paren_base
        self.function = function    # FunctionDef owning this scope, or None
        self.locks = []             # AcquireSites taken in this scope


class _Buffer:
    """Accumulates statement/header text with a per-character line map."""

    def __init__(self):
        self.chars = []
        self.lines = []

    def add(self, ch, line):
        self.chars.append(ch)
        self.lines.append(line)

    @property
    def text(self):
        return "".join(self.chars)

    def line_at(self, offset):
        return self.lines[offset] if self.lines else 0

    def first_line(self):
        for i, c in enumerate(self.chars):
            if not c.isspace():
                return self.lines[i]
        return None

    def clear(self):
        self.chars = []
        self.lines = []


def _blank_preprocessor(code_lines):
    """Blanks preprocessor directives (with continuations) so #define
    bodies never parse as code."""
    out = list(code_lines)
    i = 0
    while i < len(out):
        if out[i].lstrip().startswith("#"):
            while True:
                cont = out[i].rstrip().endswith("\\")
                out[i] = ""
                i += 1
                if not cont or i >= len(out):
                    break
        else:
            i += 1
    return out


def _extract_parens_name(header):
    """For a function-like header, returns (name, rest-after-arg-list,
    arg-list-text) or (None, None, None). The name is the qualified
    identifier before the first top-level '(' whose group balances within
    the header."""
    depth = 0
    start = None
    for i, c in enumerate(header):
        if c == "(":
            if depth == 0 and start is None:
                start = i
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0 and start is not None:
                before = header[:start].rstrip()
                m = IDENT_RE.search(before)
                return ((m.group(0) if m else None), header[i + 1:],
                        header[start + 1:i])
    return None, None, None


def _split_top_level(text):
    """Splits on commas at zero ()/[]/{} nesting depth."""
    parts = []
    depth = 0
    cur = []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def _param_range(args_text):
    """(min, max) parameter counts for a definition's arg list."""
    text = args_text.strip()
    if not text or text == "void":
        return 0, 0
    parts = _split_top_level(text)
    if any("..." in p for p in parts):
        return 0, 1 << 20
    maximum = len(parts)
    minimum = maximum - sum(1 for p in parts if "=" in p)
    return minimum, maximum


def _call_arity(text, open_paren):
    """Argument count of the call whose '(' is at `open_paren` in `text`,
    or None when the group does not balance within the text (e.g. it was
    split by a lambda body)."""
    depth = 0
    for i in range(open_paren, len(text)):
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                inner = text[open_paren + 1:i].strip()
                if not inner:
                    return 0
                return len(_split_top_level(inner))
    return None


_REST_OK_RE = re.compile(
    r"^\s*(?:(?:const|noexcept|override|final|mutable|&&?|->\s*[\w:<>&*\s]+"
    r"|REQUIRES\s*\([^()]*\)|EXCLUDES\s*\([^()]*\)|ACQUIRE\s*\([^()]*\)"
    r"|RELEASE\s*\([^()]*\)|NO_THREAD_SAFETY_ANALYSIS)\s*)*"
    r"(?::.*)?$", re.DOTALL)


def _classify_scope(header):
    """Classifies the '{' that follows `header`. Returns (kind, name)."""
    stripped = header.strip()
    first = re.match(r"[A-Za-z_]\w*", stripped)
    first_word = first.group(0) if first else None
    if not stripped or first_word in SCOPE_KEYWORDS:
        return "block", None
    if LAMBDA_INTRO_RE.search(stripped):
        return "lambda", None
    if re.search(r"\bnamespace\b", stripped):
        return "namespace", None
    if ENUM_RE.search(stripped):
        return "block", None
    if CLASS_HEAD_RE.match(stripped):
        # `class [attributes] Name [: bases]` — name = last identifier
        # before the base clause.
        body = stripped
        colon = re.search(r"(?<!:):(?!:)", body)
        if colon:
            body = body[:colon.start()]
        idents = re.findall(r"[A-Za-z_]\w*", body)
        idents = [w for w in idents
                  if w not in ("template", "typename", "class", "struct",
                               "union", "final", "public", "private",
                               "protected", "alignas")]
        if idents:
            return "class", idents[-1]
        return "block", None
    name, rest, args_text = _extract_parens_name(header)
    if name is not None and rest is not None and _REST_OK_RE.match(rest):
        if name.split("::")[-1] not in CALL_KEYWORDS:
            return "function", (name, args_text)
    if name is None and "(" in stripped and "operator" in stripped:
        return "function", (None, args_text)   # anonymous operator overload
    # Unbalanced parens (expression brace), aggregate initializers, etc.
    return "block", None


def parse_source(path, text, model):
    """Parses one file into `model`. `path` is repo-relative POSIX."""
    model.paths.add(path)
    raw_lines = text.splitlines()
    code, comments = strip_code(raw_lines)
    code = _blank_preprocessor(code)

    includes = set()
    for line in raw_lines:
        m = INCLUDE_RE.match(line)
        if m:
            includes.add("src/" + m.group(1))
    model.includes[path] = includes

    for i, comment in enumerate(comments):
        if HOTPATH_TAG_RE.match(comment.strip()) and code[i].strip() == "":
            model.hotpath_tags.append((path, i))

    scopes = []           # stack of _Scope
    buf = _Buffer()
    paren_depth = 0

    def current_function():
        for s in reversed(scopes):
            if s.kind in ("function", "lambda"):
                return s.function
            if s.kind == "class":
                return None
        return None

    def current_class():
        for s in reversed(scopes):
            if s.kind == "class":
                return s.name
            if s.kind in ("function", "lambda"):
                return None
        return None

    def held_now():
        fn = current_function()
        if fn is None:
            return []
        held = []
        for s in reversed(scopes):
            held.extend(s.locks)
            if s.kind in ("function", "lambda"):
                break
        return held

    def extract_types(text, fn):
        if fn is None:
            return
        for m in LOCAL_REF_RE.finditer(text):
            fn.local_types.setdefault(m.group(2), m.group(1))

    def scan_calls(text_buf, fn, end=None):
        if fn is None:
            return
        text = text_buf.text if end is None else text_buf.text[:end]
        held = [s.expr for s in held_now()]
        for m in CALL_RE.finditer(text):
            name = m.group(2)
            if name in CALL_KEYWORDS:
                continue
            line = text_buf.line_at(m.start(2)) + 1
            arity = _call_arity(text_buf.text, m.end() - 1)
            fn.calls.append(CallSite(line, held, m.group(1), name, arity))

    def process_statement(text_buf, closing=False):
        fn = current_function()
        cls = current_class()
        text = text_buf.text
        if not text.strip():
            text_buf.clear()
            return
        # Mutex declarations (members, locals, globals).
        dm = MUTEX_DECL_RE.search(text)
        if dm and path != "src/util/mutex.h":
            line = text_buf.line_at(dm.start(1)) + 1
            level = int(dm.group(2)) if dm.group(2) else None
            decl = MutexDecl(path, line, dm.group(1), cls,
                             fn.qual if fn else None, level)
            model.mutexes.append(decl)
            if cls:
                model.class_members.setdefault(cls, {})[decl.name] = decl
            if fn:
                fn.local_mutexes[decl.name] = decl
            text_buf.clear()
            return
        if fn is None and cls is not None:
            # Member types, for receiver-based call/mutex resolution.
            types = model.member_types.setdefault(cls, {})
            before_attr = re.split(
                r"\b(?:GUARDED_BY|PT_GUARDED_BY|LOCK_LEVEL)\b",
                text.strip())[0].rstrip().rstrip("=0{} \t\n")
            tm = TEMPLATE_MEMBER_RE.search(before_attr)
            if tm:
                types.setdefault(tm.group(2), tm.group(1))
            else:
                pm = PLAIN_MEMBER_RE.match(before_attr)
                if pm:
                    types.setdefault(pm.group(2), pm.group(1))
            # REQUIRES on in-class method declarations.
            rq = REQUIRES_RE.search(text)
            if rq:
                cm = re.search(r"([A-Za-z_]\w*)\s*\(", text)
                if cm and cm.group(1) not in CALL_KEYWORDS:
                    names = [n.strip().lstrip("!") for n in
                             rq.group(1).split(",") if n.strip()]
                    model.requires_decls[(cls, cm.group(1))] = names
        if fn is None:
            text_buf.clear()
            return
        extract_types(text, fn)
        # Calls first (with the pre-acquisition held set), then the
        # acquisition takes effect. Per-statement granularity is fine for
        # this codebase: nothing acquires and calls in one statement.
        am = ACQUIRE_RE.search(text)
        scan_calls(text_buf, fn)
        if am:
            line = text_buf.line_at(am.start(1)) + 1
            site = AcquireSite(line, [s.expr for s in held_now()],
                               am.group(1))
            fn.acquires.append(site)
            if not closing and scopes:
                scopes[-1].locks.append(site)
        text_buf.clear()

    def open_scope(line_idx):
        kind, name = _classify_scope(buf.text)
        fn = None
        if kind == "lambda":
            # The text before the lambda intro belongs to the enclosing
            # function (e.g. `ec_.ParkOne(epoch, [this] {`).
            intro = LAMBDA_INTRO_RE.search(buf.text)
            outer = current_function()
            scan_calls(buf, outer, end=intro.start())
            fn = FunctionDef(path, outer.cls if outer else current_class(),
                             f"{outer.name if outer else '<file>'}"
                             f"::<lambda:{line_idx + 1}>",
                             buf.first_line() if buf.first_line() is not None
                             else line_idx, is_lambda=True)
            fn.enclosing = outer
            model.functions.append(fn)
        elif kind == "function":
            name, args_text = name
            cls = current_class()
            if name is None:
                name = f"<operator:{line_idx + 1}>"
            if "::" in name:
                parts = [p for p in name.split("::") if p]
                if len(parts) >= 2:
                    cls, name = parts[-2], parts[-1]
                else:
                    name = parts[-1]
            fn = FunctionDef(path, cls, name,
                             buf.first_line() if buf.first_line() is not None
                             else line_idx)
            fn.enclosing = None
            if args_text is not None:
                fn.arity_min, fn.arity_max = _param_range(args_text)
                extract_types(args_text, fn)
            rq = REQUIRES_RE.search(buf.text)
            if rq:
                fn.requires = [n.strip().lstrip("!") for n in
                               rq.group(1).split(",") if n.strip()]
            model.functions.append(fn)
        elif kind == "class":
            model.class_files.setdefault(name, set()).add(path)
        elif kind == "block":
            scan_calls(buf, current_function())
            extract_types(buf.text, current_function())
        scopes.append(_Scope(kind, name, paren_depth, fn))
        buf.clear()

    def close_scope():
        if buf.text.strip():
            process_statement(buf, closing=True)
        buf.clear()
        if scopes:
            scopes.pop()

    for i, line in enumerate(code):
        for ch in line:
            if ch == "{":
                open_scope(i)
            elif ch == "}":
                close_scope()
            elif ch == "(":
                paren_depth += 1
                buf.add(ch, i)
            elif ch == ")":
                paren_depth = max(0, paren_depth - 1)
                buf.add(ch, i)
            elif ch == ";":
                base = scopes[-1].paren_base if scopes else 0
                if paren_depth <= base:
                    process_statement(buf)
                else:
                    buf.add(ch, i)
            else:
                buf.add(ch, i)
        buf.add("\n", i)


def _transitive_includes(model):
    closure = {}
    for path in model.paths:
        seen = set()
        stack = [path]
        while stack:
            p = stack.pop()
            for inc in model.includes.get(p, ()):
                if inc in model.paths and inc not in seen:
                    seen.add(inc)
                    stack.append(inc)
        closure[path] = seen
    return closure


def _receiver_type(model, fn, obj):
    """Best-effort static type of a call/field receiver identifier."""
    if obj is None:
        return None
    typ = fn.local_types.get(obj)
    if typ:
        return typ
    if fn.is_lambda and getattr(fn, "enclosing", None) is not None:
        typ = fn.enclosing.local_types.get(obj)
        if typ:
            return typ
    found = {types[obj] for types in model.member_types.values()
             if obj in types}
    if len(found) == 1:
        return found.pop()
    return None


def resolve(model):
    """Resolves acquisition/REQUIRES sites to MutexDecls and binds HOTPATH
    tags. Returns unleveled-mutex / unknown-mutex violations."""
    out = []
    by_name = {}
    for decl in model.mutexes:
        by_name.setdefault(decl.name, []).append(decl)
        if decl.level is None:
            out.append(Violation(
                decl.path, decl.line, "unleveled-mutex",
                f"countlib::Mutex '{decl.display}' has no LOCK_LEVEL(n) "
                f"annotation — assign it a level in the docs/concurrency.md "
                f"hierarchy table"))
    includes = _transitive_includes(model)

    def resolve_expr(fn, expr):
        # expr like `mu_`, `stripe.mu`, `state->mu`, `error_mutex`.
        parts = re.split(r"\.|->", expr)
        member = re.sub(r"\[[^\]]*\]", "", parts[-1]).strip()
        obj = re.sub(r"\[[^\]]*\]", "", parts[-2]).strip() if len(parts) > 1 \
            else None
        # (1) member of the enclosing method's class (only for unqualified
        # or this-qualified expressions).
        if obj in (None, "this") and fn.cls:
            decl = model.class_members.get(fn.cls, {}).get(member)
            if decl:
                return decl
        # (2) member of the receiver's parseable type.
        if obj:
            typ = _receiver_type(model, fn, obj)
            if typ:
                decl = model.class_members.get(typ, {}).get(member)
                if decl:
                    return decl
        # (3) a local mutex in this function (lambdas see the enclosing
        # function's locals — they capture by reference).
        decl = fn.local_mutexes.get(member)
        if decl:
            return decl
        walk = getattr(fn, "enclosing", None)
        while walk is not None:
            decl = walk.local_mutexes.get(member)
            if decl:
                return decl
            walk = getattr(walk, "enclosing", None)
        # (4) unique through the include graph.
        cands = by_name.get(member, [])
        visible = [d for d in cands
                   if d.path == fn.path or d.path in includes.get(fn.path,
                                                                  ())]
        if len(visible) == 1:
            return visible[0]
        # (5) unique globally.
        if len(cands) == 1:
            return cands[0]
        return None

    for fn in model.functions:
        req_names = list(fn.requires)
        if fn.cls:
            req_names += model.requires_decls.get((fn.cls, fn.name), [])
        for name in dict.fromkeys(req_names):
            decl = resolve_expr(fn, name)
            if decl:
                fn.required_decls.append(decl)
        for site in fn.acquires:
            site.decl = resolve_expr(fn, site.expr)
            if site.decl is None:
                out.append(Violation(
                    fn.path, site.line, "unknown-mutex",
                    f"cannot resolve MutexLock target '&{site.expr}' in "
                    f"{fn.qual} to a Mutex declaration"))
        # Held sets were recorded as raw exprs during parsing; resolve
        # them and prepend the REQUIRES-held mutexes.
        for site in fn.acquires + fn.calls:
            held = []
            for expr in site.held:
                decl = resolve_expr(fn, expr)
                if decl:
                    held.append(decl)
            site.held = tuple(dict.fromkeys(
                list(fn.required_decls) + held))

    # Bind each HOTPATH tag to the next function at or below the tag line.
    for path, tag_line in model.hotpath_tags:
        best = None
        for fn in model.functions:
            if fn.path == path and fn.header_line >= tag_line:
                if best is None or fn.header_line < best.header_line:
                    best = fn
        if best is not None:
            best.hotpath = True
    return out


def _index_by_uname(model):
    by_uname = {}
    for g in model.functions:
        if not g.is_lambda:
            by_uname.setdefault(g.name, []).append(g)
    return by_uname


def _call_candidates(model, fn, site, by_uname):
    """Functions a call site may dispatch to (name-resolved; conservative
    over-approximation when the receiver cannot be typed)."""
    cands = by_uname.get(site.name, [])
    if not cands:
        return cands
    # Receiver narrowing: `this->`/unqualified calls prefer the enclosing
    # class; a typed receiver pins the callee's class.
    if site.obj and site.obj != "this":
        typ = _receiver_type(model, fn, site.obj)
        if typ:
            typed = [g for g in cands if g.cls == typ]
            if typed:
                cands = typed
    elif fn.cls:
        same = [g for g in cands if g.cls == fn.cls]
        if same:
            cands = same
    # Methods of classes whose declaring file is not in the caller's include
    # closure cannot be the callee (free functions are exempt: forward
    # declarations make them reachable without an include edge we can see).
    visible = model.visible.get(fn.path, set()) | {fn.path}
    seen_from = [g for g in cands
                 if g.cls is None or g.path in visible or
                 (model.class_files.get(g.cls, set()) & visible)]
    if seen_from:
        cands = seen_from
    # Arity pruning: a call with N args cannot dispatch to an overload whose
    # parameter count range excludes N.
    if site.arity is not None:
        fits = [g for g in cands
                if g.arity_min is None or
                g.arity_min <= site.arity <= g.arity_max]
        if fits:
            cands = fits
    return cands


def compute_summaries(model):
    """Fixpoint over the call graph: each function's transitive may-acquire
    set and blocking witness."""
    by_uname = _index_by_uname(model)
    model.visible = _transitive_includes(model)
    for fn in model.functions:
        fn.may_acquire = {s.decl for s in fn.acquires if s.decl}
        fn.blocking = None
        for site in fn.calls:
            if site.name in PARK_PRIMITIVES:
                fn.blocking = fn.blocking or ("park", site.line, site.name)
            elif site.name == JOIN_METHOD and site.obj is not None:
                fn.blocking = fn.blocking or ("join", site.line,
                                              f"{site.obj}.join")
            elif site.name in BLOCKING_CONTRACT_METHODS:
                fn.blocking = fn.blocking or ("api", site.line, site.name)
    changed = True
    while changed:
        changed = False
        for fn in model.functions:
            for site in fn.calls:
                for g in _call_candidates(model, fn, site, by_uname):
                    if g is fn:
                        continue
                    if not g.may_acquire <= fn.may_acquire:
                        fn.may_acquire |= g.may_acquire
                        changed = True
                    if g.blocking and not fn.blocking:
                        fn.blocking = ("call", site.line,
                                       f"{site.name} -> {g.qual}")
                        changed = True
    return by_uname


def collect_edges(model, by_uname):
    """All (held, acquired, path, line, via) acquired-while-held edges."""
    edges = []
    for fn in model.functions:
        for site in fn.acquires:
            if site.decl is None:
                continue
            for h in site.held:
                edges.append((h, site.decl, fn.path, site.line, None))
        for site in fn.calls:
            if not site.held:
                continue
            acquired = set()
            for g in _call_candidates(model, fn, site, by_uname):
                if g is not fn:
                    acquired |= g.may_acquire
            for a in acquired:
                for h in site.held:
                    edges.append((h, a, fn.path, site.line, site.name))
    return edges


def check_lock_order(model, edges):
    out = []
    seen = set()
    adj = {}
    for h, a, path, line, via in edges:
        if h is not a:
            # Self-edges stay out of the cycle graph: re-acquisition is
            # reported below (even for unleveled mutexes), and a trivial
            # one-node "cycle" would only duplicate that finding.
            adj.setdefault(h, set()).add(a)
        if h is not a and (h.level is None or a.level is None):
            continue  # unleveled-mutex is already reported at the decl
        if h is not a and a.level > h.level:
            continue
        key = (path, line, h, a)
        if key in seen:
            continue
        seen.add(key)
        via_txt = f" (via call to '{via}')" if via else ""
        if h is a:
            msg = (f"re-acquires '{h.display}' (level {h.level}) while "
                   f"already holding it{via_txt} — countlib::Mutex is not "
                   f"reentrant")
        else:
            msg = (f"acquires '{a.display}' (level {a.level}) while holding "
                   f"'{h.display}' (level {h.level}){via_txt} — the lock "
                   f"hierarchy requires strictly increasing levels")
        out.append(Violation(path, line, "lock-order", msg))
    # Cycle check over the acquired-while-held graph, independent of
    # levels, so allowlisted inversions can never combine into a deadlock.
    color = {}
    stack = []

    def dfs(node):
        color[node] = 1
        stack.append(node)
        for nxt in sorted(adj.get(node, ()), key=lambda d: (d.path, d.line)):
            if color.get(nxt, 0) == 0:
                cyc = dfs(nxt)
                if cyc:
                    return cyc
            elif color.get(nxt) == 1:
                return stack[stack.index(nxt):] + [nxt]
        color[node] = 2
        stack.pop()
        return None

    for node in sorted(adj, key=lambda d: (d.path, d.line)):
        if color.get(node, 0) == 0:
            del stack[:]
            cyc = dfs(node)
            if cyc:
                names = " -> ".join(d.display for d in cyc)
                out.append(Violation(
                    cyc[0].path, cyc[0].line, "lock-cycle",
                    f"mutex-acquisition cycle: {names} — deadlockable; "
                    f"lock-cycle findings cannot be allowlisted"))
                break
    return out


def _blocking_witness(model, fn, site, by_uname):
    if site.name in PARK_PRIMITIVES:
        return f"'{site.name}'"
    if site.name == JOIN_METHOD and site.obj is not None:
        return f"'{site.obj}.join()'"
    if site.name in BLOCKING_CONTRACT_METHODS:
        return f"blocking API '{site.name}'"
    for g in _call_candidates(model, fn, site, by_uname):
        if g is not fn and g.blocking:
            return (f"'{site.name}' -> {g.qual} ({g.blocking[0]} at "
                    f"{g.path}:{g.blocking[1]})")
    return None


def check_park_under_lock(model, by_uname):
    out = []
    seen = set()
    for fn in model.functions:
        for site in fn.calls:
            if not site.held:
                continue
            witness = _blocking_witness(model, fn, site, by_uname)
            if witness is None:
                continue
            key = (fn.path, site.line)
            if key in seen:
                continue
            seen.add(key)
            held_txt = ", ".join(
                f"'{h.display}' (level {h.level})" for h in site.held)
            out.append(Violation(
                fn.path, site.line, "park-under-lock",
                f"blocking call {witness} reachable while holding "
                f"{held_txt} — park/join only with no countlib::Mutex "
                f"held"))
    return out


def check_hotpath_blocking(model, by_uname):
    out = []
    seen = set()
    for fn in model.functions:
        if not fn.hotpath:
            continue
        for site in fn.calls:
            witness = _blocking_witness(model, fn, site, by_uname)
            if witness is None:
                continue
            key = (fn.path, site.line)
            if key in seen:
                continue
            seen.add(key)
            out.append(Violation(
                fn.path, site.line, "hotpath-blocking",
                f"`// HOTPATH` function {fn.qual} reaches blocking call "
                f"{witness} — the hot path must never block"))
    return out


def analyze_texts(files):
    """Full analysis over [(repo-relative path, text)]. Returns (model,
    violations) — the core entry point; main() and the tests both use it."""
    model = Model()
    for path, text in files:
        parse_source(path, text, model)
    violations = resolve(model)
    by_uname = compute_summaries(model)
    edges = collect_edges(model, by_uname)
    violations += check_lock_order(model, edges)
    violations += check_park_under_lock(model, by_uname)
    violations += check_hotpath_blocking(model, by_uname)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    model.edges = edges
    return model, violations


def dump_graph(model):
    print("mutex hierarchy:")
    for d in sorted(model.mutexes, key=lambda d: (d.level is None,
                                                  d.level or 0)):
        level = "?" if d.level is None else d.level
        print(f"  level {level:>3}  {d.display:<40} {d.path}:{d.line}")
    printed = set()
    print("acquired-while-held edges:")
    for h, a, path, line, via in model.edges:
        key = (h, a)
        if key in printed:
            continue
        printed.add(key)
        via_txt = f" via {via}()" if via else ""
        print(f"  {h.display} (L{h.level}) -> {a.display} (L{a.level})"
              f"{via_txt}  [{path}:{line}]")


def clang_cross_check(cc_files, model, compile_commands_dir):
    """Best-effort AST pass over the clang python bindings: verifies every
    syntactically-parsed LOCK_LEVEL survives into the AST annotate
    attribute and that the AST sees no countlib::Mutex the table missed.
    Returns (violations, note); never raises."""
    try:
        import clang.cindex as ci
    except Exception as e:  # module absent or libclang.so missing
        return [], f"libclang unavailable ({e.__class__.__name__})"
    out = []
    try:
        index = ci.Index.create()
        db = ci.CompilationDatabase.fromDirectory(compile_commands_dir)
        table = {(d.path, d.line): d for d in model.mutexes}
        seen_tus = 0
        for absolute in cc_files:
            cmds = db.getCompileCommands(absolute)
            if not cmds:
                continue
            args = []
            skip_next = False
            for a in list(cmds[0].arguments)[1:]:
                if skip_next:
                    skip_next = False
                    continue
                if a in ("-c", absolute):
                    continue
                if a == "-o":
                    skip_next = True
                    continue
                args.append(a)
            tu = index.parse(absolute, args=args)
            seen_tus += 1
            for cur in tu.cursor.walk_preorder():
                if cur.kind not in (ci.CursorKind.FIELD_DECL,
                                    ci.CursorKind.VAR_DECL):
                    continue
                if cur.type.spelling.split("::")[-1] != "Mutex":
                    continue
                loc = cur.location
                if loc.file is None:
                    continue
                rel = repo_relative(os.path.abspath(loc.file.name))
                if rel == "src/util/mutex.h" or not rel.startswith("src/"):
                    continue
                level = None
                for child in cur.get_children():
                    if child.kind == ci.CursorKind.ANNOTATE_ATTR and \
                            child.displayname.startswith(
                                "countlib::lock_level="):
                        level = int(child.displayname.split("=", 1)[1])
                decl = table.get((rel, loc.line))
                if decl is None:
                    out.append(Violation(
                        rel, loc.line, "clang-unleveled",
                        f"AST sees countlib::Mutex '{cur.spelling}' that "
                        f"the syntactic table missed"))
                elif level is not None and decl.level != level:
                    out.append(Violation(
                        rel, loc.line, "clang-level-mismatch",
                        f"AST lock level {level} != parsed LOCK_LEVEL "
                        f"{decl.level} for '{decl.display}'"))
        # De-duplicate: headers are seen once per including TU.
        uniq = {}
        for v in out:
            uniq[(v.path, v.line, v.rule)] = v
        return (sorted(uniq.values(), key=lambda v: (v.path, v.line)),
                f"AST cross-check over {seen_tus} TU(s)")
    except Exception as e:
        return [], f"AST pass failed ({e.__class__.__name__}: {e})"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="countlib lock-hierarchy & blocking-contract analyzer "
                    "(see docs/concurrency.md)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyze "
                             "(default: src/ under the repo root)")
    parser.add_argument("--allowlist",
                        default=os.path.join(REPO_ROOT, "tools",
                                             "locktree_allow.txt"),
                        help="path:line:rule suppression file")
    parser.add_argument("--dump", action="store_true",
                        help="print the mutex hierarchy and the "
                             "acquired-while-held edges")
    parser.add_argument("--clang", choices=("auto", "on", "off"),
                        default="auto",
                        help="AST cross-check via the python clang "
                             "bindings: auto = if importable, on = "
                             "required, off = skip")
    parser.add_argument("--compile-commands",
                        default=os.path.join(REPO_ROOT, "build"),
                        help="directory containing compile_commands.json "
                             "for the AST cross-check")
    args = parser.parse_args(argv)

    paths = args.paths if args.paths else ["src"]
    try:
        files = collect_files(paths)
    except FileNotFoundError as e:
        print(f"locktree: no such path: {e}", file=sys.stderr)
        return 2

    allow = set()
    if os.path.exists(args.allowlist):
        try:
            allow = load_allowlist(args.allowlist)
        except ValueError as e:
            print(f"locktree: {e}", file=sys.stderr)
            return 2

    inputs = []
    for absolute in files:
        rel = repo_relative(absolute)
        try:
            with open(absolute, "r", encoding="utf-8") as fh:
                inputs.append((rel, fh.read()))
        except OSError as e:
            print(f"locktree: cannot read {rel}: {e}", file=sys.stderr)
            return 2

    model, violations = analyze_texts(inputs)

    if args.clang != "off":
        cc_files = [f for f in files if f.endswith((".cc", ".cpp"))]
        clang_violations, note = clang_cross_check(
            cc_files, model, args.compile_commands)
        print(f"locktree: {note}", file=sys.stderr)
        if args.clang == "on" and "unavailable" in note:
            print("locktree: --clang=on but the bindings are missing",
                  file=sys.stderr)
            return 2
        violations += clang_violations

    if args.dump:
        dump_graph(model)

    # lock-cycle findings bypass the allowlist by design.
    cycles = [v for v in violations if v.rule == "lock-cycle"]
    rest = [v for v in violations if v.rule != "lock-cycle"]
    reported = apply_allowlist(rest, allow,
                               "tools/locktree_allow.txt") + cycles

    for v in reported:
        print(v)
    mutexes = len(model.mutexes)
    if reported:
        print(f"locktree: {len(reported)} finding(s) over {len(files)} "
              f"file(s), {mutexes} mutex(es)", file=sys.stderr)
        return 1
    print(f"locktree: clean ({len(files)} file(s), {mutexes} mutex(es), "
          f"{len({(e[0], e[1]) for e in model.edges})} lock-order edge(s))",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
