#!/usr/bin/env python3
"""countlib's concurrency linter: mechanical checks for the conventions
documented in docs/concurrency.md. Runs over src/ by default; CI runs it
as part of the static-analysis lane and ctest runs its test suite
(tools/conclint_test.py).

Rules (names are stable; the allowlist references them):

  mo-comment     Every explicit ``std::memory_order_*`` argument must be
                 justified by a ``// mo:`` comment — on the same line, or
                 in the comment block immediately above the statement. A
                 contiguous run of memory-order statements may share one
                 block comment (e.g. ``// mo: relaxed x4 — ...``).

  hotpath-alloc  A function tagged with a ``// HOTPATH`` comment directly
                 above its signature must not allocate: no ``new``, no
                 malloc-family call, no growing container calls
                 (push_back/emplace/resize/reserve/insert/append), no
                 make_unique/make_shared, no std::string construction or
                 to_string. These functions are the submit/drain/record
                 paths that must stay allocation-free under saturation.

  raw-park       Raw standard park/notify machinery —
                 ``std::condition_variable``, ``std::mutex`` and its lock
                 guards, ``notify_one``/``notify_all`` — is forbidden
                 outside the two sanctioned files: util/event_count.h
                 (the one park/notify primitive; a CV wait demands a
                 genuine std::unique_lock<std::mutex>) and util/mutex.h
                 (the annotated wrapper over std::mutex). Everything else
                 blocks via EventCount and locks via countlib::Mutex.

Allowlist: ``tools/conclint_allow.txt``, one ``path:line:rule`` entry per
line — format, matching, and stale-entry discipline are shared with
locktree via tools/lintlib.py.

Usage:
  tools/conclint.py [paths...] [--allowlist tools/conclint_allow.txt]

Exit status: 0 = clean, 1 = violations found, 2 = bad invocation.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lintlib import (REPO_ROOT, Violation, apply_allowlist, collect_files,
                     load_allowlist, repo_relative, strip_code)

# Files where rule raw-park does not apply (repo-relative, POSIX slashes).
RAW_PARK_SANCTIONED = (
    "src/util/event_count.h",
    "src/util/mutex.h",
)

MEMORY_ORDER_TOKEN = "std::memory_order_"

RAW_PARK_RE = re.compile(
    r"std::(condition_variable(_any)?|mutex|timed_mutex|recursive_mutex|"
    r"shared_mutex|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bnotify_(one|all)\s*\("
)

ALLOC_RE = re.compile(
    r"\bnew\b"
    r"|\b(malloc|calloc|realloc|strdup)\s*\("
    r"|(?:\.|->)(push_back|emplace_back|emplace|resize|reserve|insert|append)\b"
    r"|\bmake_(unique|shared)\b"
    r"|\bstd::string\s*[({]"
    r"|\bto_string\b"
)

HOTPATH_TAG_RE = re.compile(r"^\s*//+\s*HOTPATH\b")


def check_mo_comments(path, lines, code, comments, out):
    """Rule mo-comment (see module docstring for the covering rules)."""
    for i, code_line in enumerate(code):
        if MEMORY_ORDER_TOKEN not in code_line:
            continue
        if "mo:" in comments[i]:
            continue
        # Walk upward: skip continuation lines of this statement, skip
        # complete statements that are themselves memory-order sites (a
        # shared block comment covers the whole contiguous run), and
        # accept any comment line carrying "mo:" before other code.
        justified = False
        j = i - 1
        while j >= 0:
            comment = comments[j].strip()
            stripped = code[j].strip()
            if stripped == "" and comment != "":
                if "mo:" in comment:
                    justified = True
                    break
                j -= 1
                continue
            if MEMORY_ORDER_TOKEN in code[j] and stripped.endswith(";"):
                j -= 1
                continue
            if stripped != "" and not stripped.endswith((";", "{", "}")):
                j -= 1  # continuation line of a multi-line statement
                continue
            break
        if not justified:
            out.append(Violation(
                path, i + 1, "mo-comment",
                "explicit std::memory_order_* without a `// mo:` "
                "justification on the same line or in the comment block "
                "above the statement"))


def check_hotpath_alloc(path, lines, code, comments, out):
    """Rule hotpath-alloc (see module docstring)."""
    for i, comment in enumerate(comments):
        if not HOTPATH_TAG_RE.match(comment.strip()) and not (
                code[i].strip() == "" and HOTPATH_TAG_RE.match(comment)):
            continue
        # Find the function's opening brace after the tag, then its match.
        depth = 0
        opened = False
        j = i + 1
        while j < len(code):
            for c in code[j]:
                if c == "{":
                    depth += 1
                    opened = True
                elif c == "}":
                    depth -= 1
            if opened:
                m = ALLOC_RE.search(code[j])
                if m:
                    out.append(Violation(
                        path, j + 1, "hotpath-alloc",
                        f"allocation in `// HOTPATH` function "
                        f"(tagged at line {i + 1}): {m.group(0)!r}"))
            if opened and depth <= 0:
                break
            j += 1


def check_raw_park(path, lines, code, comments, out):
    """Rule raw-park (see module docstring)."""
    if path in RAW_PARK_SANCTIONED:
        return
    for i, code_line in enumerate(code):
        m = RAW_PARK_RE.search(code_line)
        if m:
            out.append(Violation(
                path, i + 1, "raw-park",
                f"raw park/notify primitive {m.group(0)!r} outside "
                f"util/event_count.h — park via EventCount, lock via "
                f"countlib::Mutex (util/mutex.h)"))


def lint_text(path, text):
    """Lints one file's contents; `path` is repo-relative with POSIX
    slashes. Returns a list of Violations."""
    lines = text.splitlines()
    code, comments = strip_code(lines)
    out = []
    check_mo_comments(path, lines, code, comments, out)
    check_hotpath_alloc(path, lines, code, comments, out)
    check_raw_park(path, lines, code, comments, out)
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="countlib concurrency linter (see docs/concurrency.md)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             "(default: src/ under the repo root)")
    parser.add_argument("--allowlist",
                        default=os.path.join(REPO_ROOT, "tools",
                                             "conclint_allow.txt"),
                        help="path:line:rule suppression file")
    args = parser.parse_args(argv)

    paths = args.paths if args.paths else ["src"]
    try:
        files = collect_files(paths)
    except FileNotFoundError as e:
        print(f"conclint: no such path: {e}", file=sys.stderr)
        return 2

    allow = set()
    if os.path.exists(args.allowlist):
        try:
            allow = load_allowlist(args.allowlist)
        except ValueError as e:
            print(f"conclint: {e}", file=sys.stderr)
            return 2

    violations = []
    for absolute in files:
        rel = repo_relative(absolute)
        try:
            with open(absolute, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as e:
            print(f"conclint: cannot read {rel}: {e}", file=sys.stderr)
            return 2
        violations.extend(lint_text(rel, text))

    reported = apply_allowlist(violations, allow, "tools/conclint_allow.txt")

    for v in reported:
        print(v)
    if reported:
        print(f"conclint: {len(reported)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"conclint: clean ({len(files)} file(s))", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
