#!/usr/bin/env python3
"""Tests for tools/promcheck.py: sample/TYPE grammar, histogram
cumulativity and +Inf closure, the must-stay-zero invariants, and the CLI
exit-code contract. Run directly or via ctest; CI runs promcheck itself
over the example's real dump.
"""

import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import promcheck  # noqa: E402

GOOD = """\
# TYPE countlib_pipeline_events_submitted_total counter
countlib_pipeline_events_submitted_total 1000
# TYPE countlib_pipeline_events_dropped_total counter
countlib_pipeline_events_dropped_total 0
# TYPE countlib_pipeline_queue_depth gauge
countlib_pipeline_queue_depth 12
# TYPE countlib_pipeline_submit_apply_latency_ns histogram
countlib_pipeline_submit_apply_latency_ns_bucket{le="1023"} 2
countlib_pipeline_submit_apply_latency_ns_bucket{le="2047"} 3
countlib_pipeline_submit_apply_latency_ns_bucket{le="+Inf"} 3
countlib_pipeline_submit_apply_latency_ns_sum 3500
countlib_pipeline_submit_apply_latency_ns_count 3
"""


class CheckTest(unittest.TestCase):
    def test_valid_dump_has_no_violations(self):
        self.assertEqual(promcheck.check(GOOD), [])

    def test_sample_without_type_is_flagged(self):
        errors = promcheck.check("countlib_orphan_total 5\n")
        self.assertTrue(any("no preceding # TYPE" in e for e in errors))

    def test_histogram_series_resolve_to_their_family_type(self):
        # _bucket/_sum/_count need the base name's TYPE, not their own.
        self.assertEqual(promcheck.check(GOOD), [])
        errors = promcheck.check(
            "countlib_lat_ns_bucket{le=\"+Inf\"} 1\ncountlib_lat_ns_sum 5\n"
            "countlib_lat_ns_count 1\n")
        self.assertTrue(any("no preceding # TYPE countlib_lat_ns" in e
                            for e in errors))

    def test_unparseable_line_is_flagged(self):
        errors = promcheck.check("!!not prometheus!!\n")
        self.assertTrue(any("unparseable" in e for e in errors))

    def test_non_numeric_value_is_flagged(self):
        errors = promcheck.check(
            "# TYPE m counter\nm twelve\n")
        self.assertTrue(any("non-numeric" in e for e in errors))

    def test_duplicate_type_is_flagged(self):
        errors = promcheck.check(
            "# TYPE m counter\n# TYPE m gauge\nm 1\n")
        self.assertTrue(any("duplicate # TYPE" in e for e in errors))

    def test_noncumulative_histogram_is_flagged(self):
        bad = GOOD.replace('le="2047"} 3', 'le="2047"} 1')
        errors = promcheck.check(bad)
        self.assertTrue(any("not cumulative" in e for e in errors))

    def test_missing_inf_bucket_is_flagged(self):
        bad = "\n".join(l for l in GOOD.splitlines() if "+Inf" not in l)
        errors = promcheck.check(bad)
        self.assertTrue(any("+Inf" in e for e in errors))

    def test_inf_bucket_disagreeing_with_count_is_flagged(self):
        bad = GOOD.replace("_count 3", "_count 7")
        errors = promcheck.check(bad)
        self.assertTrue(any("!= _count" in e for e in errors))

    def test_must_stay_zero_violation_is_flagged(self):
        bad = GOOD.replace("countlib_pipeline_events_dropped_total 0",
                           "countlib_pipeline_events_dropped_total 4")
        errors = promcheck.check(bad)
        self.assertTrue(any("must stay zero" in e for e in errors))

    def test_required_metric_missing_is_flagged(self):
        errors = promcheck.check(GOOD, require=["countlib_store_keys"])
        self.assertTrue(any("missing" in e for e in errors))

    def test_required_metric_present_passes(self):
        self.assertEqual(
            promcheck.check(
                GOOD, require=["countlib_pipeline_events_submitted_total"]),
            [])


class CliTest(unittest.TestCase):
    TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "promcheck.py")

    def run_cli(self, text, *extra):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "metrics.prom")
            with open(path, "w") as f:
                f.write(text)
            return subprocess.run(
                [sys.executable, self.TOOL, path, *extra],
                capture_output=True, text=True).returncode

    def test_valid_dump_exits_zero(self):
        self.assertEqual(self.run_cli(GOOD), 0)

    def test_violation_exits_one(self):
        self.assertEqual(self.run_cli("garbage here\n"), 1)

    def test_empty_file_exits_two(self):
        self.assertEqual(self.run_cli(""), 2)

    def test_missing_file_exits_two(self):
        rc = subprocess.run(
            [sys.executable, self.TOOL, "/nonexistent.prom"],
            capture_output=True, text=True).returncode
        self.assertEqual(rc, 2)


if __name__ == "__main__":
    unittest.main()
