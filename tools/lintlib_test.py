#!/usr/bin/env python3
"""Unit tests for tools/lintlib.py — the allowlist parser/matcher and
source stripper shared by conclint and locktree. Run directly or via
ctest (lintlib_py_test)."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lintlib
from lintlib import (Violation, apply_allowlist, collect_files,
                     load_allowlist, strip_code)


def write_allow(text):
    fh = tempfile.NamedTemporaryFile(
        "w", suffix=".txt", delete=False, encoding="utf-8")
    fh.write(text)
    fh.close()
    return fh.name


class StripCodeTest(unittest.TestCase):
    def test_line_comment_blanked(self):
        code, comments = strip_code(["int x;  // trailing note"])
        self.assertEqual(code[0].rstrip(), "int x;")
        self.assertIn("trailing note", comments[0])

    def test_block_comment_spans_lines(self):
        code, comments = strip_code(["int a; /* start", "middle", "end */ int b;"])
        self.assertEqual(code[0].rstrip(), "int a;")
        self.assertEqual(code[1].strip(), "")
        self.assertIn("int b;", code[2])
        self.assertIn("middle", comments[1])

    def test_string_contents_blanked_columns_preserved(self):
        code, _ = strip_code(['call("std::mutex inside string");'])
        self.assertNotIn("std::mutex", code[0])
        self.assertEqual(len(code[0]), len('call("std::mutex inside string");'))
        # Quotes themselves survive so paren/quote balance is intact.
        self.assertEqual(code[0].count('"'), 2)

    def test_escaped_quote_in_string(self):
        code, _ = strip_code(['s = "a\\"b"; int y;'])
        self.assertIn("int y;", code[0])

    def test_char_literal_blanked(self):
        code, _ = strip_code(["if (c == '{') depth++;"])
        self.assertNotIn("{", code[0])
        self.assertIn("depth++", code[0])

    def test_comment_containing_code_tokens(self):
        code, comments = strip_code(["// std::mutex m; new Foo();"])
        self.assertEqual(code[0].strip(), "")
        self.assertIn("std::mutex", comments[0])


class LoadAllowlistTest(unittest.TestCase):
    def test_parses_entries_and_comments(self):
        path = write_allow(
            "# header comment\n"
            "src/a.cc:12:lock-order\n"
            "src/b.h:3:raw-park  # trailing comment\n"
            "\n")
        try:
            entries = load_allowlist(path)
        finally:
            os.unlink(path)
        self.assertEqual(entries, {("src/a.cc", 12, "lock-order"),
                                   ("src/b.h", 3, "raw-park")})

    def test_malformed_entry_raises(self):
        path = write_allow("src/a.cc:notanumber:rule\n")
        try:
            with self.assertRaises(ValueError):
                load_allowlist(path)
        finally:
            os.unlink(path)

    def test_missing_field_raises(self):
        path = write_allow("src/a.cc:12\n")
        try:
            with self.assertRaises(ValueError):
                load_allowlist(path)
        finally:
            os.unlink(path)

    def test_path_with_colons_uses_last_two_fields(self):
        # rsplit(:, 2) keeps any colons in the path intact.
        path = write_allow("weird:dir/a.cc:7:rule\n")
        try:
            entries = load_allowlist(path)
        finally:
            os.unlink(path)
        self.assertEqual(entries, {("weird:dir/a.cc", 7, "rule")})


class ApplyAllowlistTest(unittest.TestCase):
    def v(self, path, line, rule):
        return Violation(path, line, rule, "msg")

    def test_matching_entry_suppresses(self):
        out = apply_allowlist([self.v("src/a.cc", 5, "r")],
                              {("src/a.cc", 5, "r")}, "allow.txt")
        self.assertEqual(out, [])

    def test_non_matching_entry_is_stale(self):
        out = apply_allowlist([], {("src/a.cc", 5, "r")}, "allow.txt")
        self.assertEqual(len(out), 1)
        self.assertIn("stale allowlist entry", out[0].message)
        self.assertIn("allow.txt", out[0].message)
        self.assertEqual((out[0].path, out[0].line, out[0].rule),
                         ("src/a.cc", 5, "r"))

    def test_wrong_line_does_not_match(self):
        out = apply_allowlist([self.v("src/a.cc", 6, "r")],
                              {("src/a.cc", 5, "r")}, "allow.txt")
        # The finding survives AND the entry is reported stale.
        self.assertEqual(len(out), 2)

    def test_wrong_rule_does_not_match(self):
        out = apply_allowlist([self.v("src/a.cc", 5, "other")],
                              {("src/a.cc", 5, "r")}, "allow.txt")
        self.assertEqual(len(out), 2)

    def test_one_entry_covers_all_findings_at_location(self):
        # Two findings at the same (path, line, rule) are both silenced by
        # the single entry (same behavior conclint always had).
        out = apply_allowlist([self.v("src/a.cc", 5, "r"),
                               self.v("src/a.cc", 5, "r")],
                              {("src/a.cc", 5, "r")}, "allow.txt")
        self.assertEqual(out, [])


class CollectFilesTest(unittest.TestCase):
    def test_walks_directory_for_sources(self):
        with tempfile.TemporaryDirectory() as d:
            os.makedirs(os.path.join(d, "sub"))
            for name in ("a.cc", "b.h", "sub/c.cpp", "sub/skip.txt"):
                with open(os.path.join(d, name), "w") as fh:
                    fh.write("int x;\n")
            files = collect_files([d])
        rels = sorted(os.path.basename(f) for f in files)
        self.assertEqual(rels, ["a.cc", "b.h", "c.cpp"])

    def test_missing_path_raises(self):
        with self.assertRaises(FileNotFoundError):
            collect_files(["/nonexistent/definitely/not/here"])

    def test_explicit_file_kept_regardless_of_extension(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "notes.txt")
            with open(p, "w") as fh:
                fh.write("x\n")
            self.assertEqual(collect_files([p]), [p])


class SharedUsageTest(unittest.TestCase):
    def test_conclint_uses_lintlib(self):
        # The refactor's point: one allowlist implementation. conclint must
        # be importing these, not redefining them.
        import conclint
        self.assertIs(conclint.load_allowlist, lintlib.load_allowlist)
        self.assertIs(conclint.strip_code, lintlib.strip_code)
        self.assertIs(conclint.Violation, lintlib.Violation)


if __name__ == "__main__":
    unittest.main()
