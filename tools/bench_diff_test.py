#!/usr/bin/env python3
"""Tests for tools/bench_diff.py: direction-awareness (rates down = bad,
costs up = bad), the absolute floors that keep timer noise out of cost
verdicts, the must-stay-zero invariants, configs[] entry matching, and the
CLI exit codes. Run directly (python3 tools/bench_diff_test.py) or via
ctest; CI runs it as its own step.
"""

import argparse
import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def judge(baseline, current, threshold=0.10):
    """Run bench_diff's walk over two documents, returning its judged rows."""
    bench_diff.ARGS = argparse.Namespace(threshold=threshold)
    rows = []
    bench_diff.walk(baseline, current, "$", rows)
    return rows


def verdicts(rows):
    return {path: verdict for path, _, _, verdict, _ in rows}


class WalkAndJudgeTest(unittest.TestCase):
    def test_rate_drop_beyond_threshold_is_regression(self):
        rows = judge({"events_per_sec": 1000.0}, {"events_per_sec": 800.0})
        self.assertEqual(verdicts(rows)["$.events_per_sec"], "REGRESSION")

    def test_rate_drop_within_threshold_is_ok(self):
        rows = judge({"events_per_sec": 1000.0}, {"events_per_sec": 950.0})
        self.assertEqual(verdicts(rows)["$.events_per_sec"], "ok")

    def test_rate_rise_is_never_a_regression(self):
        # Direction-awareness: higher is better for rates, even +1000%.
        rows = judge({"events_per_sec": 100.0}, {"events_per_sec": 1100.0})
        self.assertEqual(verdicts(rows)["$.events_per_sec"], "ok")

    def test_zero_baseline_rate_is_skipped_not_crashed(self):
        rows = judge({"events_per_sec": 0}, {"events_per_sec": 100.0})
        self.assertEqual(verdicts(rows)["$.events_per_sec"], "skip")

    def test_cost_rise_beyond_threshold_and_floor_is_regression(self):
        # +100% and +0.1s: clears both the relative threshold and the 3ms
        # absolute floor.
        rows = judge({"cpu_seconds": 0.1}, {"cpu_seconds": 0.2})
        self.assertEqual(verdicts(rows)["$.cpu_seconds"], "REGRESSION")

    def test_cost_drop_is_never_a_regression(self):
        # Direction-awareness: lower is better for costs.
        rows = judge({"cpu_seconds": 0.2}, {"cpu_seconds": 0.01})
        self.assertEqual(verdicts(rows)["$.cpu_seconds"], "ok")

    def test_cost_rise_under_absolute_floor_is_ok(self):
        # +50% relative but only +0.5ms absolute: timer noise, not a
        # regression (the floor for cpu_seconds is 3ms).
        rows = judge({"cpu_seconds": 0.001}, {"cpu_seconds": 0.0015})
        self.assertEqual(verdicts(rows)["$.cpu_seconds"], "ok")

    def test_free_baseline_cost_above_floor_is_regression(self):
        # Baseline measured 0: any above-floor cost is new, with no
        # relative change to divide by.
        rows = judge({"cpu_seconds": 0.0}, {"cpu_seconds": 0.05})
        self.assertEqual(verdicts(rows)["$.cpu_seconds"], "REGRESSION")

    def test_zero_invariant_violation_regresses_regardless_of_threshold(self):
        rows = judge({"lost_events": 0}, {"lost_events": 1}, threshold=1e9)
        self.assertEqual(verdicts(rows)["$.lost_events"], "REGRESSION")

    def test_zero_invariant_holds(self):
        for key in ("lost_events", "reject_allocs", "invalid_slot_allocs",
                    "busy_passes", "unaccounted_events", "record_allocs"):
            rows = judge({key: 0}, {key: 0})
            self.assertEqual(verdicts(rows)[f"$.{key}"], "ok", key)

    def test_ceiling_breach_regresses_even_with_worse_baseline(self):
        # Ceiling metrics ignore the baseline entirely: a baseline that
        # itself breached the ceiling must not grandfather the breach in.
        rows = judge({"overhead_pct": 9.0}, {"overhead_pct": 6.0},
                     threshold=1e9)
        self.assertEqual(verdicts(rows)["$.overhead_pct"], "REGRESSION")

    def test_under_ceiling_is_ok_even_if_worse_than_baseline(self):
        # Direction vs baseline does not matter, only the absolute ceiling:
        # 0.1% -> 4.9% is a big relative rise but still within budget.
        rows = judge({"overhead_pct": 0.1}, {"overhead_pct": 4.9})
        self.assertEqual(verdicts(rows)["$.overhead_pct"], "ok")

    def test_ceiling_exact_value_is_a_breach(self):
        rows = judge({"overhead_pct": 0.0}, {"overhead_pct": 5.0})
        self.assertEqual(verdicts(rows)["$.overhead_pct"], "REGRESSION")

    def test_unjudged_context_metrics_are_ignored(self):
        rows = judge({"events": 100, "elapsed_s": 1.0, "worker_steps": [4, 2]},
                     {"events": 5, "elapsed_s": 99.0, "worker_steps": [1]})
        self.assertEqual(rows, [])

    def test_configs_matched_by_mode_and_producers_not_position(self):
        baseline = {"configs": [
            {"mode": "direct", "producers": 1, "events_per_sec": 1000.0},
            {"mode": "pipeline", "producers": 4, "events_per_sec": 2000.0},
        ]}
        # Same entries, reversed order, pipeline/p4 regressed.
        current = {"configs": [
            {"mode": "pipeline", "producers": 4, "events_per_sec": 500.0},
            {"mode": "direct", "producers": 1, "events_per_sec": 1000.0},
        ]}
        v = verdicts(judge(baseline, current))
        self.assertEqual(v["$.configs[direct/p1].events_per_sec"], "ok")
        self.assertEqual(v["$.configs[pipeline/p4].events_per_sec"],
                         "REGRESSION")

    def test_baseline_entry_missing_from_current_is_skipped(self):
        # The baseline-only entry (p8) is judged against nothing — skipped;
        # the current-only entry (p1) is new coverage — a WARN row, never a
        # bogus comparison between different configs.
        baseline = {"configs": [
            {"mode": "direct", "producers": 8, "events_per_sec": 1000.0}]}
        current = {"configs": [
            {"mode": "direct", "producers": 1, "events_per_sec": 1.0}]}
        rows = judge(baseline, current)
        self.assertEqual(verdicts(rows), {"$.configs[direct/p1]": "WARN"})

    def test_new_section_in_current_warns_with_note(self):
        # A bench scenario landing in the same PR as its first numbers (the
        # net section) has no baseline yet: WARN row, not an error and not
        # silence.
        baseline = {"configs": [
            {"mode": "direct", "producers": 1, "events_per_sec": 1000.0}]}
        current = {"configs": [
            {"mode": "direct", "producers": 1, "events_per_sec": 1000.0}],
            "net": {"events_per_sec": 500000.0, "lost_events": 0}}
        rows = judge(baseline, current)
        self.assertEqual(verdicts(rows)["$.net"], "WARN")
        (_, base, cur, _, note), = [r for r in rows if r[0] == "$.net"]
        self.assertIsNone(base)
        self.assertIsNone(cur)
        self.assertIn("not in baseline", note)

    def test_new_section_without_judged_metrics_stays_silent(self):
        # Context-only additions (counts, timestamps) are not worth a row.
        rows = judge({"events_per_sec": 1.0},
                     {"events_per_sec": 1.0, "meta": {"elapsed_s": 3.0}})
        self.assertNotIn("$.meta", verdicts(rows))

    def test_new_judged_leaf_in_current_warns(self):
        rows = judge({"events_per_sec": 1.0},
                     {"events_per_sec": 1.0, "submits_per_sec": 2.0})
        self.assertEqual(verdicts(rows)["$.submits_per_sec"], "WARN")

    def test_new_configs_entry_in_current_warns(self):
        baseline = {"configs": [
            {"mode": "direct", "producers": 1, "events_per_sec": 1000.0}]}
        current = {"configs": [
            {"mode": "direct", "producers": 1, "events_per_sec": 1000.0},
            {"mode": "net", "producers": 4, "events_per_sec": 2000.0}]}
        v = verdicts(judge(baseline, current))
        self.assertEqual(v["$.configs[direct/p1].events_per_sec"], "ok")
        self.assertEqual(v["$.configs[net/p4]"], "WARN")

    def test_new_section_does_not_mask_real_regressions(self):
        baseline = {"events_per_sec": 1000.0}
        current = {"events_per_sec": 100.0,
                   "net": {"events_per_sec": 500000.0}}
        v = verdicts(judge(baseline, current))
        self.assertEqual(v["$.events_per_sec"], "REGRESSION")
        self.assertEqual(v["$.net"], "WARN")

    def test_nested_sections_are_walked(self):
        baseline = {"overload": {"shed": {"unaccounted_events": 0},
                                 "spill": {"lost_events": 0}}}
        current = {"overload": {"shed": {"unaccounted_events": 0},
                                "spill": {"lost_events": 3}}}
        v = verdicts(judge(baseline, current))
        self.assertEqual(v["$.overload.shed.unaccounted_events"], "ok")
        self.assertEqual(v["$.overload.spill.lost_events"], "REGRESSION")


class CliTest(unittest.TestCase):
    """End-to-end exit-code contract through the real CLI."""

    GOOD = {"events_per_sec": 1000.0, "lost_events": 0}

    def run_cli_full(self, baseline, current, *extra):
        tool = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "bench_diff.py")
        with tempfile.TemporaryDirectory() as d:
            bpath = os.path.join(d, "baseline.json")
            cpath = os.path.join(d, "current.json")
            with open(bpath, "w") as f:
                json.dump(baseline, f)
            with open(cpath, "w") as f:
                json.dump(current, f)
            return subprocess.run(
                [sys.executable, tool, "--baseline", bpath,
                 "--current", cpath, *extra],
                capture_output=True, text=True)

    def run_cli(self, baseline, current, *extra):
        return self.run_cli_full(baseline, current, *extra).returncode

    def test_clean_diff_exits_zero(self):
        self.assertEqual(self.run_cli(self.GOOD, self.GOOD), 0)

    def test_regression_exits_one(self):
        bad = copy.deepcopy(self.GOOD)
        bad["lost_events"] = 7
        self.assertEqual(self.run_cli(self.GOOD, bad), 1)

    def test_warn_only_suppresses_the_failure(self):
        bad = copy.deepcopy(self.GOOD)
        bad["lost_events"] = 7
        self.assertEqual(self.run_cli(self.GOOD, bad, "--warn-only"), 0)

    def test_clean_diff_prints_pass_verdict(self):
        # The explicit verdict line must appear even when nothing regressed
        # — a green run is a statement, not an absence of output.
        proc = self.run_cli_full(self.GOOD, self.GOOD)
        self.assertIn("bench_diff: PASS", proc.stdout)

    def test_regression_prints_fail_verdict(self):
        bad = copy.deepcopy(self.GOOD)
        bad["lost_events"] = 7
        proc = self.run_cli_full(self.GOOD, bad)
        self.assertIn("bench_diff: FAIL", proc.stdout)

    def test_warn_only_prints_warn_verdict(self):
        bad = copy.deepcopy(self.GOOD)
        bad["lost_events"] = 7
        proc = self.run_cli_full(self.GOOD, bad, "--warn-only")
        self.assertIn("bench_diff: WARN (not gating)", proc.stdout)

    def test_new_section_alone_does_not_fail_the_run(self):
        # WARN rows gate nothing: exit 0, and the verdict line flags the
        # sections still awaiting a baseline refresh.
        cur = copy.deepcopy(self.GOOD)
        cur["net"] = {"events_per_sec": 500000.0, "lost_events": 0}
        proc = self.run_cli_full(self.GOOD, cur)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("bench_diff: PASS", proc.stdout)
        self.assertIn("1 new section(s) awaiting a baseline", proc.stdout)

    def test_schema_mismatch_exits_two(self):
        self.assertEqual(self.run_cli({"unrelated": 1}, {"other": 2}), 2)

    def test_missing_input_exits_two(self):
        tool = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "bench_diff.py")
        rc = subprocess.run(
            [sys.executable, tool, "--baseline", "/nonexistent.json",
             "--current", "/nonexistent.json"],
            capture_output=True, text=True).returncode
        self.assertEqual(rc, 2)


if __name__ == "__main__":
    unittest.main()
