/// \file analytics_server.cpp
/// \brief The §1 analytics system as a *service*: an `EventServer`
/// (src/net/server.h) listens on TCP, leases a pipeline producer slot per
/// connection, and feeds remote page-visit events through the async
/// batched path into a `ShardedCounterStore` — each drain worker owns a
/// private shard (no stripe locks on the write path), and a dashboard
/// thread reads merged cross-shard cuts once a second while the load is
/// live (docs/store_api.md). Point the companion loadgen
/// (`example_analytics_loadgen`) at it for a loopback end-to-end run —
/// that pair is also CI's smoke test for the net subsystem.
///
/// Overload policy works exactly as in-process (`--overload`, see
/// overload.h); the wire adds credit-based flow control on top, so a
/// saturated pipeline makes remote producers park client-side instead of
/// flooding the socket (docs/net_protocol.md).
///
/// With `--metrics_out=FILE` the run is instrumented through the obs
/// layer and the final Prometheus dump includes the `countlib_net_*`
/// inventory plus the `countlib_store_*` shard metrics — in particular
/// `countlib_store_shard_merge_latency_ns`, fed by the dashboard's
/// merge-on-read snapshots (src/obs/README.md) — CI validates it with
/// tools/promcheck.py.
///
///   ./build/example_analytics_server [--port=N] [--bind=ADDR]
///       [--slots=N] [--queue_capacity=N] [--workers=N] [--shards=N]
///       [--overload=block|shed|spill] [--run_seconds=N]
///       [--metrics_out=FILE]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/sharded_counter_store.h"
#include "net/server.h"
#include "obs/collector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "pipeline/ingest_pipeline.h"
#include "util/cli.h"
#include "util/logging.h"

namespace {

countlib::pipeline::OverloadPolicy ParsePolicy(const std::string& name) {
  using countlib::pipeline::OverloadPolicy;
  if (name == "shed") return OverloadPolicy::kShed;
  if (name == "spill") return OverloadPolicy::kSpill;
  COUNTLIB_CHECK(name == "block") << "unknown --overload policy: " << name;
  return OverloadPolicy::kBlock;
}

void DumpMetrics(const std::string& path) {
  const countlib::obs::Snapshot snap = countlib::obs::GlobalSnapshot();
  std::ofstream f(path);
  f << countlib::obs::ToPrometheusText(snap);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace countlib;  // NOLINT(build/namespaces)

  FlagParser flags(
      "TCP ingestion server over the async batched pipeline.");
  flags.AddUint64("port", 7700, "listen port (0 = ephemeral, printed)");
  flags.AddString("bind", "127.0.0.1", "bind address");
  flags.AddUint64("slots", 8, "producer slots == max concurrent connections");
  flags.AddUint64("queue_capacity", 4096, "per-slot ring capacity");
  flags.AddUint64("workers", 2, "drain worker threads");
  flags.AddUint64("shards", 0,
                  "private store shards (0 = one per drain worker); the "
                  "pipeline clamps the worker pool to this many lanes");
  flags.AddString("overload", "block", "block|shed|spill");
  flags.AddUint64("run_seconds", 30, "serve this long, then drain and exit");
  flags.AddString("metrics_out", "", "final Prometheus dump path (optional)");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s\n", flags.HelpText().c_str());
    return 0;
  }

  const bool metrics = !flags.GetString("metrics_out").empty();
  const uint64_t workers = std::max<uint64_t>(flags.GetUint64("workers"), 1);
  uint64_t shards = flags.GetUint64("shards");
  if (shards == 0) shards = workers;  // one private shard per drain worker
  auto store = analytics::ShardedCounterStore::Make(
                   shards, CounterKind::kExact, /*state_bits=*/32,
                   (uint64_t{1} << 32) - 1, /*seed=*/1)
                   .ValueOrDie();
  // Registered only once the store sits at its final address (the gauges
  // capture `this`); the handles release before the store dies.
  std::vector<obs::Registration> store_metrics;
  if (metrics) store_metrics = store->RegisterMetrics();

  pipeline::PipelineOptions popt;
  popt.num_producers = flags.GetUint64("slots");
  popt.queue_capacity = flags.GetUint64("queue_capacity");
  popt.num_workers = workers;
  popt.overload.policy = ParsePolicy(flags.GetString("overload"));
  popt.enable_metrics = metrics;
  auto pipe = pipeline::IngestPipeline::Make(store.get(), popt).ValueOrDie();

  net::ServerOptions sopt;
  sopt.bind_address = flags.GetString("bind");
  sopt.port = static_cast<uint16_t>(flags.GetUint64("port"));
  sopt.enable_metrics = metrics;
  auto server = net::EventServer::Make(pipe.get(), sopt).ValueOrDie();
  std::printf("analytics_server: listening on %s:%u (%llu slots, %s)\n",
              sopt.bind_address.c_str(), server->port(),
              static_cast<unsigned long long>(popt.num_producers),
              pipeline::OverloadPolicyName(popt.overload.policy));
  std::fflush(stdout);

  // The dashboard: a merged cross-shard cut once a second while the load
  // is live — the new read path under real ingest, and (under
  // --metrics_out) the feed for countlib_store_shard_merge_latency_ns.
  std::atomic<bool> serving{true};
  std::thread dashboard([&serving, &store] {
    while (serving.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
      auto top = store->TopK(5);
      if (!top.ok()) continue;
      double total = 0.0;
      COUNTLIB_CHECK_OK(
          store->ForEach([&total](uint64_t, double est) { total += est; }));
      std::printf("analytics_server: dashboard cut — %llu keys, %.0f total "
                  "weight, top key %llu (~%.0f)\n",
                  static_cast<unsigned long long>(store->NumKeys()), total,
                  top.ValueOrDie().empty()
                      ? 0ull
                      : static_cast<unsigned long long>(
                            top.ValueOrDie().front().key),
                  top.ValueOrDie().empty() ? 0.0
                                           : top.ValueOrDie().front().estimate);
    }
  });

  std::this_thread::sleep_for(
      std::chrono::seconds(flags.GetUint64("run_seconds")));
  serving.store(false, std::memory_order_release);
  dashboard.join();

  COUNTLIB_CHECK_OK(server->Stop());
  const net::ServerStats net_stats = server->Stats();
  COUNTLIB_CHECK_OK(pipe->Drain());
  const pipeline::PipelineStats pipe_stats = pipe->Stats();

  std::printf(
      "analytics_server: %llu conns (%llu refused), %llu frames rx, "
      "%llu events rx, %llu delivered, %llu shed, %llu decode errors, "
      "%llu partial frames, %llu credit stalls\n",
      static_cast<unsigned long long>(net_stats.connections_accepted),
      static_cast<unsigned long long>(net_stats.connections_refused),
      static_cast<unsigned long long>(net_stats.frames_rx),
      static_cast<unsigned long long>(net_stats.events_rx),
      static_cast<unsigned long long>(net_stats.events_delivered),
      static_cast<unsigned long long>(net_stats.events_shed),
      static_cast<unsigned long long>(net_stats.decode_errors),
      static_cast<unsigned long long>(net_stats.partial_frames),
      static_cast<unsigned long long>(net_stats.credit_stalls));
  std::printf("analytics_server: pipeline applied %llu events (%llu shed)\n",
              static_cast<unsigned long long>(pipe_stats.events_applied),
              static_cast<unsigned long long>(pipe_stats.events_shed));
  const analytics::StoreStats store_stats = store->Stats();
  std::printf(
      "analytics_server: store holds %llu keys across %llu private shards; "
      "%llu merged reads served\n",
      static_cast<unsigned long long>(store->NumKeys()),
      static_cast<unsigned long long>(store->num_shards()),
      static_cast<unsigned long long>(store_stats.merge_reads));

  // Server-side books: every event from an acked-or-complete frame is
  // either delivered or shed — nothing vanishes inside the server.
  if (net_stats.events_delivered + net_stats.events_shed >
      net_stats.events_rx) {
    std::printf("analytics_server: BOOKS VIOLATION (delivered+shed > rx)\n");
    return 1;
  }

  if (metrics) DumpMetrics(flags.GetString("metrics_out"));
  return 0;
}
