/// \file moment_estimation.cpp
/// \brief Using approximate counters inside a bigger streaming algorithm:
/// F_p frequency-moment estimation (the [JW19]/[GS09] application from §1
/// of the paper). The AMS-style sampler needs many occurrence counters —
/// swapping exact registers for approximate ones shrinks them from
/// log(n) to log log(n) + log(1/eps) bits each.
///
///   ./build/examples/moment_estimation [--p=0.5]

#include <cstdio>
#include <unordered_map>

#include "apps/frequency_moments.h"
#include "random/distributions.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("moment_estimation: F_p on a Zipf stream");
  flags.AddDouble("p", 0.5, "moment order in (0, 2]");
  flags.AddUint64("stream", 100000, "stream length");
  flags.AddUint64("estimators", 500, "parallel AMS samplers");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const double p = flags.GetDouble("p");
  const uint64_t stream_len = flags.GetUint64("stream");
  const uint64_t estimators = flags.GetUint64("estimators");

  // Zipf item stream.
  auto zipf = ZipfDistribution::Make(512, 1.1).ValueOrDie();
  Rng rng(2022);
  std::unordered_map<uint64_t, uint64_t> freq;
  std::vector<uint64_t> items(stream_len);
  for (auto& item : items) {
    item = zipf.Sample(&rng);
    ++freq[item];
  }
  const double truth = apps::ExactFp(freq, p);
  std::printf("stream: %llu items, %zu distinct; exact F_%.2f = %.1f\n",
              static_cast<unsigned long long>(stream_len), freq.size(), p, truth);

  // Provision the occurrence counters for counts up to 2^40 — the regime a
  // long-lived stream would need, and where the log n vs log log n gap
  // shows (an exact register would cost 41 bits here).
  const Accuracy counter_acc{0.05, 0.01, uint64_t{1} << 40};
  for (CounterKind kind : {CounterKind::kExact, CounterKind::kSampling,
                           CounterKind::kMorrisPlus}) {
    auto est =
        apps::FpMomentEstimator::Make(p, estimators, kind, counter_acc, 7)
            .ValueOrDie();
    for (uint64_t item : items) COUNTLIB_CHECK_OK(est.Add(item));
    const double got = est.Estimate().ValueOrDie();
    std::printf("%-16s occurrence counters: F_p-hat = %10.1f (%+.2f%%), "
                "counter state = %llu bits total\n",
                CounterKindToString(kind), got, 100.0 * (got / truth - 1.0),
                static_cast<unsigned long long>(est.CounterStateBits()));
  }
  std::printf("\nthe approximate-counter versions match the exact-register "
              "version's accuracy while spending fewer bits per occurrence "
              "counter (log log n + log 1/eps vs log n) — the [GS09]/[JW19] "
              "trick; the gap widens as the provisioned n_max grows\n");
  return 0;
}
