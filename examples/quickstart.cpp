/// \file quickstart.cpp
/// \brief 60-second tour of countlib: build an optimal approximate counter,
/// feed it a million increments, inspect the estimate and its footprint.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "core/counter_factory.h"
#include "core/nelson_yu.h"

int main() {
  using namespace countlib;

  // Target: relative error 10% with failure probability 1%, for counts up
  // to 2^30. The library derives all internal knobs from this.
  Accuracy acc;
  acc.epsilon = 0.1;
  acc.delta = 0.01;
  acc.n_max = uint64_t{1} << 30;

  // The paper's Algorithm 1 — O(log log n + log 1/eps + log log 1/delta)
  // bits of state (Theorem 1.1).
  auto counter_or = NelsonYuCounter::FromAccuracy(acc, /*seed=*/2022);
  if (!counter_or.ok()) {
    std::fprintf(stderr, "failed to build counter: %s\n",
                 counter_or.status().ToString().c_str());
    return 1;
  }
  NelsonYuCounter counter = std::move(counter_or).ValueOrDie();

  const uint64_t true_count = 1000000;
  counter.IncrementMany(true_count);  // or counter.Increment() per event

  std::printf("algorithm       : %s\n", counter.Name().c_str());
  std::printf("true count      : %llu\n",
              static_cast<unsigned long long>(true_count));
  std::printf("estimate        : %.0f\n", counter.Estimate());
  std::printf("relative error  : %+.2f%%\n",
              100.0 * (counter.Estimate() / true_count - 1.0));
  std::printf("state bits      : %d provisioned, %d in use right now\n",
              counter.StateBits(), counter.CurrentStateBits());
  std::printf("(a plain uint64 counter would spend 64 bits; an exact counter "
              "for 2^30 spends 31)\n");

  // The same accuracy target is available for every algorithm in the
  // library through the factory:
  for (CounterKind kind : {CounterKind::kMorrisPlus, CounterKind::kSampling,
                           CounterKind::kCsuros}) {
    auto other = MakeCounter(kind, acc, 7).ValueOrDie();
    other->IncrementMany(true_count);
    std::printf("%-32s -> estimate %.0f (%d bits)\n", other->Name().c_str(),
                other->Estimate(), other->StateBits());
  }
  return 0;
}
