/// \file distributed_merge.cpp
/// \brief Mergeability in action (Remark 2.4): several ingest shards count
/// the same keys independently; a coordinator merges per-key counters and
/// gets estimates as if one counter had seen the whole stream.
///
///   ./build/examples/distributed_merge [--shards=N]

#include <cstdio>

#include "analytics/sharded_store.h"
#include "core/merge.h"
#include "core/nelson_yu.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("distributed_merge: shard-and-merge counting demo");
  flags.AddUint64("shards", 8, "ingest shards");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t num_shards = flags.GetUint64("shards");

  // --- Low level: merge two Nelson-Yu counters directly. ---
  Accuracy acc{0.1, 0.01, uint64_t{1} << 26};
  auto east = NelsonYuCounter::FromAccuracy(acc, 11).ValueOrDie();
  auto west = NelsonYuCounter::FromAccuracy(acc, 12).ValueOrDie();
  east.IncrementMany(300000);
  west.IncrementMany(700000);
  auto global = Merge(east, west).ValueOrDie();
  std::printf("east=%.0f west=%.0f merged=%.0f (true 1000000, %+.2f%%)\n",
              east.Estimate(), west.Estimate(), global.Estimate(),
              100.0 * (global.Estimate() / 1e6 - 1.0));

  // --- Higher level: a sharded per-key store. ---
  SamplingCounterParams params;
  params.budget = 1u << 12;
  params.t_cap = 20;
  auto store = analytics::ShardedStore::Make(num_shards, params, 7).ValueOrDie();

  // Each shard ingests its own slice of a Zipf stream (same key space).
  auto trace = stream::Trace::GenerateZipf(256, 1.0, 400000, 5).ValueOrDie();
  const auto truth = trace.ExactCounts();
  uint64_t shard = 0;
  for (const auto& event : trace.events()) {
    COUNTLIB_CHECK_OK(store.Increment(shard, event.key, event.weight));
    shard = (shard + 1) % num_shards;
  }

  std::printf("\nper-key merged estimates across %llu shards:\n",
              static_cast<unsigned long long>(num_shards));
  std::printf("%-6s %10s %12s %10s\n", "key", "true", "merged_est", "error");
  for (uint64_t key = 0; key < 5; ++key) {
    const double est = store.MergedEstimate(key).ValueOrDie();
    const double tru = static_cast<double>(truth.at(key));
    std::printf("%-6llu %10.0f %12.0f %+9.2f%%\n",
                static_cast<unsigned long long>(key), tru, est,
                100.0 * (est / tru - 1.0));
  }
  std::printf("\nmerging loses nothing in (eps, delta): the merged counter's "
              "distribution equals a single counter over the union stream "
              "(Remark 2.4; verified distributionally in the test suite)\n");
  return 0;
}
