/// \file web_analytics.cpp
/// \brief The paper's motivating scenario (§1): per-page visit counters for
/// a large site. Millions of counters make bits-per-counter the dominant
/// cost; this example packs approximate counters into a dense bit pool and
/// compares footprint and accuracy against exact 64-bit counters.
///
///   ./build/examples/web_analytics [--pages=N] [--visits=N]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analytics/counter_store.h"
#include "stats/error_metrics.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("web_analytics: per-page visit counting demo");
  flags.AddUint64("pages", 50000, "distinct pages");
  flags.AddUint64("visits", 5000000, "total visits");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t pages = flags.GetUint64("pages");
  const uint64_t visits = flags.GetUint64("visits");

  // Page popularity is Zipf; bursts model hot pages getting hammered.
  auto trace =
      stream::Trace::GenerateBursty(pages, 1.05, 64.0, visits, 99).ValueOrDie();
  const auto truth = trace.ExactCounts();
  std::printf("simulated %llu visits over %zu distinct pages\n",
              static_cast<unsigned long long>(visits), truth.size());

  // 16 bits of state per page, calibrated for counts up to `visits`.
  auto store = analytics::CounterStore::MakeWithBitBudget(
                   CounterKind::kSampling, 16, visits, 1)
                   .ValueOrDie();
  for (const auto& event : trace.events()) {
    COUNTLIB_CHECK_OK(store.Increment(event.key, event.weight));
  }

  // Accuracy on the top pages (the ones a dashboard would show).
  std::vector<std::pair<uint64_t, uint64_t>> top(truth.begin(), truth.end());
  std::sort(top.begin(), top.end(),
            [](auto& a, auto& b) { return a.second > b.second; });
  std::printf("\n%-8s %12s %12s %10s\n", "page", "true", "estimate", "error");
  for (size_t i = 0; i < 10 && i < top.size(); ++i) {
    const double est = store.Estimate(top[i].first).ValueOrDie();
    std::printf("page%-4llu %12llu %12.0f %+9.2f%%\n",
                static_cast<unsigned long long>(top[i].first),
                static_cast<unsigned long long>(top[i].second), est,
                100.0 * (est / static_cast<double>(top[i].second) - 1.0));
  }

  const double approx_kib =
      static_cast<double>(store.TotalStateBits()) / 8.0 / 1024.0;
  const double naive_kib = 64.0 * static_cast<double>(truth.size()) / 8.0 / 1024.0;
  std::printf("\ncounter state: %.1f KiB packed (%d bits/page) vs %.1f KiB "
              "for naive uint64 counters — %.1fx smaller\n",
              approx_kib, store.bits_per_key(), naive_kib, naive_kib / approx_kib);
  std::printf("(the key->slot index costs ~%.0f bits/page for either design)\n",
              store.IndexBitsPerKey());
  return 0;
}
