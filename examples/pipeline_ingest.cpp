/// \file pipeline_ingest.cpp
/// \brief The §1 analytics system end to end, elastic edition: a pool of
/// transient producer threads leases slots from the `IngestPipeline`'s
/// producer-slot registry and feeds page-visit events through the async
/// batched path into a `ShardedCounterStore` — every drain worker writes a
/// private bit-packed shard, no locks on the hot path — while an
/// `Autoscaler` watches queue pressure and drives `SetWorkerCount` for
/// us — the pool starts at one drain thread, grows under the burst, and
/// shrinks back once the producers finish (shard = lane ownership migrates
/// with ring ownership at the resize barriers, docs/store_api.md). A
/// dashboard then reads the results with one merged `TopK` snapshot call —
/// an exact cross-shard cut per Remark 2.4.
///
/// The registry replaces the old static slot-per-thread contract: there
/// are more worker-pool threads than producer slots, so each thread
/// repeatedly acquires a slot (RAII `ProducerSlot` handle), submits a
/// chunk, and releases — the registry guarantees one holder per slot and
/// hands a released slot out again only after its queue has drained.
///
/// Everything that blocks here blocks on the shared `EventCount` primitive
/// (util/event_count.h): idle drain workers park until a producer pushes
/// into an empty ring, a `Submit` hitting a full ring parks on the ring's
/// not-full eventcount shard until a drain frees space, and a thread
/// waiting in `AcquireProducerSlot` parks until a release — all the same
/// epoch/waiter-count discipline, so a saturated or idle system costs
/// milliseconds of CPU per second instead of burning cores on sleep-polls.
///
/// What happens under *sustained* overload is a policy you pick per
/// pipeline (`--overload`, see overload.h):
///   block — producers wait for ring space; nothing is lost (default).
///   shed  — producers never wait: over-capacity events are dropped after
///           a short spin, with exact per-slot accounting in
///           `PipelineStats` (delivered + shed == submitted).
///   spill — over-capacity events overflow into a bounded in-memory
///           buffer the workers drain opportunistically; lossless until
///           the spill fills, and the spill depth counts toward the
///           autoscaler's pressure signal so the pool grows to drain it.
///
/// With `--metrics_out=FILE` the whole run is instrumented through the
/// obs layer (src/obs/README.md): the pipeline, store, and autoscaler
/// register their counters/gauges/histograms in the process-wide registry,
/// a `MetricsCollector` drives the coarse latency ticker and samples the
/// gauges into ring-buffer time series, and a dump thread rewrites FILE
/// with the Prometheus text exposition every `--metrics_period_ms` (plus a
/// final dump after drain — the one CI validates with tools/promcheck.py).
/// `FILE.json` gets the JSON twin, time series included.
///
///   ./build/example_pipeline_ingest [--pages=N] [--visits=N] [--threads=N]
///       [--slots=N] [--overload=block|shed|spill]
///       [--metrics_out=FILE] [--metrics_period_ms=N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/sharded_counter_store.h"
#include "obs/collector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "pipeline/autoscaler.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/logging.h"

namespace {

/// One snapshot -> two files: Prometheus text at `path`, JSON (with the
/// collector's time series) at `path`.json.
void DumpMetrics(const std::string& path) {
  const countlib::obs::Snapshot snap = countlib::obs::GlobalSnapshot();
  {
    std::ofstream f(path);
    f << countlib::obs::ToPrometheusText(snap);
  }
  {
    std::ofstream f(path + ".json");
    f << countlib::obs::ToJson(snap) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("pipeline_ingest: elastic async batched ingestion demo");
  flags.AddUint64("pages", 50000, "distinct pages");
  flags.AddUint64("visits", 2000000, "total visit events");
  flags.AddUint64("threads", 8, "transient producer threads sharing the slots");
  flags.AddUint64("slots", 4, "producer slots in the registry");
  flags.AddString("overload", "block",
                  "what a blocking Submit does under sustained backpressure: "
                  "block | shed | spill");
  flags.AddString("metrics_out", "",
                  "instrument the run and write the Prometheus text dump "
                  "here (and the JSON twin to <file>.json); empty disables "
                  "telemetry entirely");
  flags.AddUint64("metrics_period_ms", 500,
                  "rewrite --metrics_out every this many milliseconds "
                  "while the run is live (0 = only the final dump)");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t pages = flags.GetUint64("pages");
  const uint64_t visits = flags.GetUint64("visits");
  const uint64_t threads = flags.GetUint64("threads");
  const uint64_t slots = flags.GetUint64("slots");
  const std::string metrics_out = flags.GetString("metrics_out");
  const uint64_t metrics_period_ms = flags.GetUint64("metrics_period_ms");
  const bool metrics = !metrics_out.empty();

  // Zipf page popularity, 16 bits of packed counter state per page, one
  // private shard per producer slot (the autoscaler's worker ceiling is
  // the slot count, and the pipeline clamps workers to the store's lanes).
  auto trace = stream::Trace::GenerateZipf(pages, 1.05, visits, 99).ValueOrDie();
  auto store = analytics::ShardedCounterStore::Make(
                   slots, CounterKind::kSampling, 16, visits, 1)
                   .ValueOrDie();
  // Registered only now that the store sits at its final address (the
  // gauges capture `this`); the handles release before the store dies.
  std::vector<obs::Registration> store_metrics;
  if (metrics) store_metrics = store->RegisterMetrics();

  pipeline::PipelineOptions options;
  options.num_producers = slots;
  options.queue_capacity = 8192;
  options.max_batch = 2048;
  options.num_workers = 1;  // start small; the autoscaler grows the pool
  options.enable_metrics = metrics;
  const std::string overload = flags.GetString("overload");
  if (overload == "shed") {
    options.overload.policy = pipeline::OverloadPolicy::kShed;
  } else if (overload == "spill") {
    options.overload.policy = pipeline::OverloadPolicy::kSpill;
    options.overload.spill_capacity = 1u << 16;
  } else {
    COUNTLIB_CHECK(overload == "block") << "unknown --overload: " << overload;
  }
  auto ingest =
      pipeline::IngestPipeline::Make(store.get(), options).ValueOrDie();

  // The elastic control loop, as policy instead of hand-placed
  // SetWorkerCount calls: sample queue pressure (ring depth plus spill
  // depth under --overload=spill) every 5ms, double the pool when the
  // backlog tops half the total ring capacity, walk it back down one
  // worker at a time once the queues go shallow and the workers idle.
  pipeline::AutoscalerConfig scaling;
  scaling.min_workers = 1;
  // max_workers stays 0: Make resolves it to the producer-slot count
  // (clamped to the pipeline's own 256-worker ceiling).
  scaling.sample_interval = std::chrono::milliseconds(5);
  scaling.cooldown = std::chrono::milliseconds(25);
  scaling.scale_up_queue_depth = slots * options.queue_capacity / 2;
  scaling.scale_up_samples = 1;
  scaling.scale_down_queue_depth = 256;
  scaling.scale_down_samples = 4;
  scaling.enable_metrics = metrics;
  auto scaler = pipeline::Autoscaler::Make(ingest.get(), scaling).ValueOrDie();

  // The telemetry side, entirely optional: the collector ticks the coarse
  // clock (which arms the pipeline's latency stamping) and samples every
  // registered gauge into bounded time series; the dump thread rewrites
  // the export files while the run is live so an external scraper — or a
  // human with `watch cat` — sees the system move.
  std::unique_ptr<obs::MetricsCollector> collector;
  std::atomic<bool> dumping{false};
  std::thread dump_thread;
  if (metrics) {
    collector = obs::MetricsCollector::Make(nullptr, obs::CollectorOptions())
                    .ValueOrDie();
    if (metrics_period_ms > 0) {
      dumping.store(true);
      dump_thread = std::thread([&dumping, &metrics_out, metrics_period_ms] {
        while (dumping.load(std::memory_order_acquire)) {
          DumpMetrics(metrics_out);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(metrics_period_ms));
        }
      });
    }
  }

  // The producer pool: each thread claims trace chunks from a shared
  // cursor and, per chunk, leases whichever slot the registry hands it.
  constexpr uint64_t kChunk = 65536;
  std::atomic<uint64_t> next_chunk{0};
  const auto& events = trace.events();
  std::vector<std::thread> pool;
  for (uint64_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (true) {
        const uint64_t begin = next_chunk.fetch_add(kChunk);
        if (begin >= events.size()) return;
        const uint64_t end = std::min<uint64_t>(begin + kChunk, events.size());
        auto slot = ingest->AcquireProducerSlot().ValueOrDie();
        for (uint64_t i = begin; i < end; ++i) {
          COUNTLIB_CHECK_OK(slot.Submit(events[i].key, events[i].weight));
        }
        // The handle releases the slot here; queued leftovers are drained
        // before the registry re-issues it.
      }
    });
  }

  for (auto& t : pool) t.join();
  // Give the autoscaler a beat to observe the quiet queues and shrink,
  // then stop it before the pipeline goes away (it must not outlive the
  // pipeline it steers).
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const uint64_t workers_at_end = ingest->num_workers();
  scaler->Stop();
  const pipeline::AutoscalerStats scaling_stats = scaler->Stats();
  COUNTLIB_CHECK_OK(ingest->Drain());

  if (metrics) {
    // Stop the live rewriter; the final dump waits until after the
    // dashboard's merged TopK read below, so the validated file carries a
    // populated countlib_store_shard_merge_latency_ns histogram alongside
    // the settled must-stay-zero metrics (events_dropped, resize_errors,
    // unaccounted_events) that tools/promcheck.py asserts in CI.
    if (dump_thread.joinable()) {
      dumping.store(false, std::memory_order_release);
      dump_thread.join();
    }
    collector->Stop();
  }

  const pipeline::PipelineStats stats = ingest->Stats();
  std::printf(
      "ingested %llu events (%llu rejected then retried) in %llu batches;\n"
      "pre-aggregation folded them into %llu store updates (%.2f events/update)\n",
      static_cast<unsigned long long>(stats.events_applied),
      static_cast<unsigned long long>(stats.events_rejected),
      static_cast<unsigned long long>(stats.batches_applied),
      static_cast<unsigned long long>(stats.updates_applied),
      static_cast<double>(stats.events_applied) /
          static_cast<double>(stats.updates_applied));
  std::printf("%llu transient threads shared %llu producer slots\n",
              static_cast<unsigned long long>(threads),
              static_cast<unsigned long long>(slots));
  if (stats.events_shed > 0 || stats.events_spilled > 0) {
    // The overload policy's books: shed events are deliberate, exactly
    // counted loss; spilled events took the overflow detour but were all
    // delivered (Drain empties the spill buffer).
    std::printf(
        "overload (%s): %llu events shed, %llu events spilled "
        "(spill depth now %llu)\n",
        pipeline::OverloadPolicyName(ingest->overload_policy()),
        static_cast<unsigned long long>(stats.events_shed),
        static_cast<unsigned long long>(stats.events_spilled),
        static_cast<unsigned long long>(stats.spill_depth));
  }
  std::printf(
      "autoscaler: %llu samples, %llu scale-ups / %llu scale-downs "
      "(pool ended at %llu worker%s)\n",
      static_cast<unsigned long long>(scaling_stats.samples),
      static_cast<unsigned long long>(scaling_stats.scale_ups),
      static_cast<unsigned long long>(scaling_stats.scale_downs),
      static_cast<unsigned long long>(workers_at_end),
      workers_at_end == 1 ? "" : "s");

  std::printf("\nper-worker activity (cumulative across resizes):\n");
  for (const auto& w : ingest->PerWorkerStats()) {
    std::printf("  worker %llu: %10llu events in %6llu batches, %llu wakeups\n",
                static_cast<unsigned long long>(w.worker_id),
                static_cast<unsigned long long>(w.events_applied),
                static_cast<unsigned long long>(w.batches_applied),
                static_cast<unsigned long long>(w.wakeups));
  }

  const analytics::StoreStats store_stats = store->Stats();
  std::printf(
      "store: %llu pages at 16 bits/page packed state across %llu private "
      "shards; %llu batch calls carried %llu updates\n",
      static_cast<unsigned long long>(store->NumKeys()),
      static_cast<unsigned long long>(store->num_shards()),
      static_cast<unsigned long long>(store_stats.batch_calls),
      static_cast<unsigned long long>(store_stats.batch_updates));

  // The dashboard read path: one merged snapshot call — an exact
  // cross-shard cut — no per-key round trips.
  auto top = store->TopK(10).ValueOrDie();
  std::printf("\ntop %zu pages by estimated visits:\n", top.size());
  for (const auto& [key, estimate] : top) {
    std::printf("  page %8llu  ~%.0f visits\n",
                static_cast<unsigned long long>(key), estimate);
  }

  if (metrics) {
    DumpMetrics(metrics_out);
    std::printf("metrics: Prometheus text at %s, JSON at %s.json\n",
                metrics_out.c_str(), metrics_out.c_str());
  }
  return 0;
}
