/// \file pipeline_ingest.cpp
/// \brief The §1 analytics system end to end: concurrent producers feed
/// page-visit events through the async batched `IngestPipeline` into a
/// striped bit-packed `ConcurrentCounterStore`, then a dashboard reads the
/// results with one `TopK` snapshot call.
///
///   ./build/example_pipeline_ingest [--pages=N] [--visits=N] [--producers=N]

#include <cstdio>
#include <thread>
#include <vector>

#include "analytics/concurrent_store.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("pipeline_ingest: async batched ingestion demo");
  flags.AddUint64("pages", 50000, "distinct pages");
  flags.AddUint64("visits", 2000000, "total visit events");
  flags.AddUint64("producers", 4, "concurrent producer threads");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t pages = flags.GetUint64("pages");
  const uint64_t visits = flags.GetUint64("visits");
  const uint64_t producers = flags.GetUint64("producers");

  // Zipf page popularity, 16 bits of packed counter state per page.
  auto trace = stream::Trace::GenerateZipf(pages, 1.05, visits, 99).ValueOrDie();
  auto store = analytics::ConcurrentCounterStore::Make(
                   16, CounterKind::kSampling, 16, visits, 1)
                   .ValueOrDie();

  pipeline::PipelineOptions options;
  options.num_producers = producers;
  options.queue_capacity = 8192;
  options.max_batch = 2048;
  auto ingest = pipeline::IngestPipeline::Make(&store, options).ValueOrDie();

  // Each producer thread replays its share of the trace through its own
  // lock-free queue; Submit spins out kPending backpressure internally.
  std::vector<std::thread> threads;
  for (uint64_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const auto& events = trace.events();
      for (size_t i = p; i < events.size(); i += producers) {
        COUNTLIB_CHECK_OK(ingest->Submit(p, events[i].key, events[i].weight));
      }
    });
  }
  for (auto& t : threads) t.join();
  COUNTLIB_CHECK_OK(ingest->Drain());

  const pipeline::PipelineStats stats = ingest->Stats();
  std::printf(
      "ingested %llu events (%llu rejected then retried) in %llu batches;\n"
      "pre-aggregation folded them into %llu store updates (%.2f events/update)\n",
      static_cast<unsigned long long>(stats.events_applied),
      static_cast<unsigned long long>(stats.events_rejected),
      static_cast<unsigned long long>(stats.batches_applied),
      static_cast<unsigned long long>(stats.updates_applied),
      static_cast<double>(stats.events_applied) /
          static_cast<double>(stats.updates_applied));
  std::printf("store: %llu pages at %u bits/page packed state\n",
              static_cast<unsigned long long>(store.NumKeys()),
              16u);

  // The dashboard read path: one snapshot call, no per-key round trips.
  auto top = store.TopK(10).ValueOrDie();
  std::printf("\ntop %zu pages by estimated visits:\n", top.size());
  for (const auto& [key, estimate] : top) {
    std::printf("  page %8llu  ~%.0f visits\n",
                static_cast<unsigned long long>(key), estimate);
  }
  return 0;
}
