/// \file pipeline_ingest.cpp
/// \brief The §1 analytics system end to end, elastic edition: a pool of
/// transient producer threads leases slots from the `IngestPipeline`'s
/// producer-slot registry and feeds page-visit events through the async
/// batched path into a striped bit-packed `ConcurrentCounterStore`, while
/// an `Autoscaler` watches queue pressure and drives `SetWorkerCount` for
/// us — the pool starts at one drain thread, grows under the burst, and
/// shrinks back once the producers finish. A dashboard then reads the
/// results with one `TopK` snapshot call.
///
/// The registry replaces the old static slot-per-thread contract: there
/// are more worker-pool threads than producer slots, so each thread
/// repeatedly acquires a slot (RAII `ProducerSlot` handle), submits a
/// chunk, and releases — the registry guarantees one holder per slot and
/// hands a released slot out again only after its queue has drained.
///
/// Everything that blocks here blocks on the shared `EventCount` primitive
/// (util/event_count.h): idle drain workers park until a producer pushes
/// into an empty ring, a `Submit` hitting a full ring parks on the ring's
/// not-full eventcount shard until a drain frees space, and a thread
/// waiting in `AcquireProducerSlot` parks until a release — all the same
/// epoch/waiter-count discipline, so a saturated or idle system costs
/// milliseconds of CPU per second instead of burning cores on sleep-polls.
///
/// What happens under *sustained* overload is a policy you pick per
/// pipeline (`--overload`, see overload.h):
///   block — producers wait for ring space; nothing is lost (default).
///   shed  — producers never wait: over-capacity events are dropped after
///           a short spin, with exact per-slot accounting in
///           `PipelineStats` (delivered + shed == submitted).
///   spill — over-capacity events overflow into a bounded in-memory
///           buffer the workers drain opportunistically; lossless until
///           the spill fills, and the spill depth counts toward the
///           autoscaler's pressure signal so the pool grows to drain it.
///
///   ./build/example_pipeline_ingest [--pages=N] [--visits=N] [--threads=N]
///       [--slots=N] [--overload=block|shed|spill]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analytics/concurrent_store.h"
#include "pipeline/autoscaler.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("pipeline_ingest: elastic async batched ingestion demo");
  flags.AddUint64("pages", 50000, "distinct pages");
  flags.AddUint64("visits", 2000000, "total visit events");
  flags.AddUint64("threads", 8, "transient producer threads sharing the slots");
  flags.AddUint64("slots", 4, "producer slots in the registry");
  flags.AddString("overload", "block",
                  "what a blocking Submit does under sustained backpressure: "
                  "block | shed | spill");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t pages = flags.GetUint64("pages");
  const uint64_t visits = flags.GetUint64("visits");
  const uint64_t threads = flags.GetUint64("threads");
  const uint64_t slots = flags.GetUint64("slots");

  // Zipf page popularity, 16 bits of packed counter state per page.
  auto trace = stream::Trace::GenerateZipf(pages, 1.05, visits, 99).ValueOrDie();
  auto store = analytics::ConcurrentCounterStore::Make(
                   16, CounterKind::kSampling, 16, visits, 1)
                   .ValueOrDie();

  pipeline::PipelineOptions options;
  options.num_producers = slots;
  options.queue_capacity = 8192;
  options.max_batch = 2048;
  options.num_workers = 1;  // start small; the autoscaler grows the pool
  const std::string overload = flags.GetString("overload");
  if (overload == "shed") {
    options.overload.policy = pipeline::OverloadPolicy::kShed;
  } else if (overload == "spill") {
    options.overload.policy = pipeline::OverloadPolicy::kSpill;
    options.overload.spill_capacity = 1u << 16;
  } else {
    COUNTLIB_CHECK(overload == "block") << "unknown --overload: " << overload;
  }
  auto ingest = pipeline::IngestPipeline::Make(&store, options).ValueOrDie();

  // The elastic control loop, as policy instead of hand-placed
  // SetWorkerCount calls: sample queue pressure (ring depth plus spill
  // depth under --overload=spill) every 5ms, double the pool when the
  // backlog tops half the total ring capacity, walk it back down one
  // worker at a time once the queues go shallow and the workers idle.
  pipeline::AutoscalerConfig scaling;
  scaling.min_workers = 1;
  // max_workers stays 0: Make resolves it to the producer-slot count
  // (clamped to the pipeline's own 256-worker ceiling).
  scaling.sample_interval = std::chrono::milliseconds(5);
  scaling.cooldown = std::chrono::milliseconds(25);
  scaling.scale_up_queue_depth = slots * options.queue_capacity / 2;
  scaling.scale_up_samples = 1;
  scaling.scale_down_queue_depth = 256;
  scaling.scale_down_samples = 4;
  auto scaler = pipeline::Autoscaler::Make(ingest.get(), scaling).ValueOrDie();

  // The producer pool: each thread claims trace chunks from a shared
  // cursor and, per chunk, leases whichever slot the registry hands it.
  constexpr uint64_t kChunk = 65536;
  std::atomic<uint64_t> next_chunk{0};
  const auto& events = trace.events();
  std::vector<std::thread> pool;
  for (uint64_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (true) {
        const uint64_t begin = next_chunk.fetch_add(kChunk);
        if (begin >= events.size()) return;
        const uint64_t end = std::min<uint64_t>(begin + kChunk, events.size());
        auto slot = ingest->AcquireProducerSlot().ValueOrDie();
        for (uint64_t i = begin; i < end; ++i) {
          COUNTLIB_CHECK_OK(slot.Submit(events[i].key, events[i].weight));
        }
        // The handle releases the slot here; queued leftovers are drained
        // before the registry re-issues it.
      }
    });
  }

  for (auto& t : pool) t.join();
  // Give the autoscaler a beat to observe the quiet queues and shrink,
  // then stop it before the pipeline goes away (it must not outlive the
  // pipeline it steers).
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const uint64_t workers_at_end = ingest->num_workers();
  scaler->Stop();
  const pipeline::AutoscalerStats scaling_stats = scaler->Stats();
  COUNTLIB_CHECK_OK(ingest->Drain());

  const pipeline::PipelineStats stats = ingest->Stats();
  std::printf(
      "ingested %llu events (%llu rejected then retried) in %llu batches;\n"
      "pre-aggregation folded them into %llu store updates (%.2f events/update)\n",
      static_cast<unsigned long long>(stats.events_applied),
      static_cast<unsigned long long>(stats.events_rejected),
      static_cast<unsigned long long>(stats.batches_applied),
      static_cast<unsigned long long>(stats.updates_applied),
      static_cast<double>(stats.events_applied) /
          static_cast<double>(stats.updates_applied));
  std::printf("%llu transient threads shared %llu producer slots\n",
              static_cast<unsigned long long>(threads),
              static_cast<unsigned long long>(slots));
  if (stats.events_shed > 0 || stats.events_spilled > 0) {
    // The overload policy's books: shed events are deliberate, exactly
    // counted loss; spilled events took the overflow detour but were all
    // delivered (Drain empties the spill buffer).
    std::printf(
        "overload (%s): %llu events shed, %llu events spilled "
        "(spill depth now %llu)\n",
        pipeline::OverloadPolicyName(ingest->overload_policy()),
        static_cast<unsigned long long>(stats.events_shed),
        static_cast<unsigned long long>(stats.events_spilled),
        static_cast<unsigned long long>(stats.spill_depth));
  }
  std::printf(
      "autoscaler: %llu samples, %llu scale-ups / %llu scale-downs "
      "(pool ended at %llu worker%s)\n",
      static_cast<unsigned long long>(scaling_stats.samples),
      static_cast<unsigned long long>(scaling_stats.scale_ups),
      static_cast<unsigned long long>(scaling_stats.scale_downs),
      static_cast<unsigned long long>(workers_at_end),
      workers_at_end == 1 ? "" : "s");

  std::printf("\nper-worker activity (cumulative across resizes):\n");
  for (const auto& w : ingest->PerWorkerStats()) {
    std::printf("  worker %llu: %10llu events in %6llu batches, %llu wakeups\n",
                static_cast<unsigned long long>(w.worker_id),
                static_cast<unsigned long long>(w.events_applied),
                static_cast<unsigned long long>(w.batches_applied),
                static_cast<unsigned long long>(w.wakeups));
  }

  const analytics::StoreStats store_stats = store.Stats();
  std::printf(
      "store: %llu pages at 16 bits/page packed state; "
      "%llu batch calls carried %llu updates\n",
      static_cast<unsigned long long>(store.NumKeys()),
      static_cast<unsigned long long>(store_stats.batch_calls),
      static_cast<unsigned long long>(store_stats.batch_updates));

  // The dashboard read path: one snapshot call, no per-key round trips.
  auto top = store.TopK(10).ValueOrDie();
  std::printf("\ntop %zu pages by estimated visits:\n", top.size());
  for (const auto& [key, estimate] : top) {
    std::printf("  page %8llu  ~%.0f visits\n",
                static_cast<unsigned long long>(key), estimate);
  }
  return 0;
}
