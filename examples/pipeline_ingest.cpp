/// \file pipeline_ingest.cpp
/// \brief The §1 analytics system end to end, elastic edition: a pool of
/// transient producer threads leases slots from the `IngestPipeline`'s
/// producer-slot registry, feeds page-visit events through the async
/// batched path into a striped bit-packed `ConcurrentCounterStore`, while
/// the worker pool is resized mid-run with `SetWorkerCount`. A dashboard
/// then reads the results with one `TopK` snapshot call.
///
/// The registry replaces the old static slot-per-thread contract: there
/// are more worker-pool threads than producer slots, so each thread
/// repeatedly acquires a slot (RAII `ProducerSlot` handle), submits a
/// chunk, and releases — the registry guarantees one holder per slot and
/// hands a released slot out again only after its queue has drained.
///
///   ./build/example_pipeline_ingest [--pages=N] [--visits=N] [--threads=N]
///       [--slots=N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "analytics/concurrent_store.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("pipeline_ingest: elastic async batched ingestion demo");
  flags.AddUint64("pages", 50000, "distinct pages");
  flags.AddUint64("visits", 2000000, "total visit events");
  flags.AddUint64("threads", 8, "transient producer threads sharing the slots");
  flags.AddUint64("slots", 4, "producer slots in the registry");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t pages = flags.GetUint64("pages");
  const uint64_t visits = flags.GetUint64("visits");
  const uint64_t threads = flags.GetUint64("threads");
  const uint64_t slots = flags.GetUint64("slots");

  // Zipf page popularity, 16 bits of packed counter state per page.
  auto trace = stream::Trace::GenerateZipf(pages, 1.05, visits, 99).ValueOrDie();
  auto store = analytics::ConcurrentCounterStore::Make(
                   16, CounterKind::kSampling, 16, visits, 1)
                   .ValueOrDie();

  pipeline::PipelineOptions options;
  options.num_producers = slots;
  options.queue_capacity = 8192;
  options.max_batch = 2048;
  options.num_workers = 1;  // start small; scaled up below
  auto ingest = pipeline::IngestPipeline::Make(&store, options).ValueOrDie();

  // The producer pool: each thread claims trace chunks from a shared
  // cursor and, per chunk, leases whichever slot the registry hands it.
  constexpr uint64_t kChunk = 65536;
  std::atomic<uint64_t> next_chunk{0};
  const auto& events = trace.events();
  std::vector<std::thread> pool;
  for (uint64_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (true) {
        const uint64_t begin = next_chunk.fetch_add(kChunk);
        if (begin >= events.size()) return;
        const uint64_t end = std::min<uint64_t>(begin + kChunk, events.size());
        auto slot = ingest->AcquireProducerSlot().ValueOrDie();
        for (uint64_t i = begin; i < end; ++i) {
          COUNTLIB_CHECK_OK(slot.Submit(events[i].key, events[i].weight));
        }
        // The handle releases the slot here; queued leftovers are drained
        // before the registry re-issues it.
      }
    });
  }

  // Elastic control loop: scale the drain pool up under load, then back
  // down. Each resize re-partitions ring ownership at a safe barrier; no
  // accepted event is lost across the switch.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  COUNTLIB_CHECK_OK(ingest->SetWorkerCount(4));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  COUNTLIB_CHECK_OK(ingest->SetWorkerCount(2));

  for (auto& t : pool) t.join();
  COUNTLIB_CHECK_OK(ingest->Drain());

  const pipeline::PipelineStats stats = ingest->Stats();
  std::printf(
      "ingested %llu events (%llu rejected then retried) in %llu batches;\n"
      "pre-aggregation folded them into %llu store updates (%.2f events/update)\n",
      static_cast<unsigned long long>(stats.events_applied),
      static_cast<unsigned long long>(stats.events_rejected),
      static_cast<unsigned long long>(stats.batches_applied),
      static_cast<unsigned long long>(stats.updates_applied),
      static_cast<double>(stats.events_applied) /
          static_cast<double>(stats.updates_applied));
  std::printf("%llu transient threads shared %llu producer slots\n",
              static_cast<unsigned long long>(threads),
              static_cast<unsigned long long>(slots));

  std::printf("\nper-worker activity (cumulative across resizes):\n");
  for (const auto& w : ingest->PerWorkerStats()) {
    std::printf("  worker %llu: %10llu events in %6llu batches, %llu wakeups\n",
                static_cast<unsigned long long>(w.worker_id),
                static_cast<unsigned long long>(w.events_applied),
                static_cast<unsigned long long>(w.batches_applied),
                static_cast<unsigned long long>(w.wakeups));
  }

  const analytics::StoreStats store_stats = store.Stats();
  std::printf(
      "store: %llu pages at 16 bits/page packed state; "
      "%llu batch calls carried %llu updates\n",
      static_cast<unsigned long long>(store.NumKeys()),
      static_cast<unsigned long long>(store_stats.batch_calls),
      static_cast<unsigned long long>(store_stats.batch_updates));

  // The dashboard read path: one snapshot call, no per-key round trips.
  auto top = store.TopK(10).ValueOrDie();
  std::printf("\ntop %zu pages by estimated visits:\n", top.size());
  for (const auto& [key, estimate] : top) {
    std::printf("  page %8llu  ~%.0f visits\n",
                static_cast<unsigned long long>(key), estimate);
  }
  return 0;
}
