/// \file analytics_loadgen.cpp
/// \brief Remote-producer load generator for `example_analytics_server`:
/// N connections (each an `EventClient`, src/net/client.h) replay a
/// partitioned Zipf trace over TCP, honoring the server's credit grants,
/// then settle their books with a clean close.
///
/// The exit code is the verdict CI's loopback smoke relies on: after all
/// connections close, the aggregate ledgers must satisfy
///
///     submitted == delivered + shed + lost_unacked,  pending == 0
///
/// and a fully healthy run (no kill, no shed policy) additionally shows
/// lost_unacked == 0. Any imbalance exits nonzero.
///
/// With `--metrics_out=FILE` the settled client-side ledgers are exported
/// as a Prometheus text dump (`countlib_loadgen_*`) so CI's promcheck can
/// assert the producer half of the smoke's books the same way it asserts
/// the server half — the server's own `--metrics_out` dump is where the
/// store-side read path (`countlib_store_shard_merge_latency_ns`) shows
/// up.
///
///   ./build/example_analytics_loadgen --port=N [--host=ADDR]
///       [--connections=N] [--events=N] [--keys=N] [--skew=F] [--batch=N]
///       [--window=N] [--expect_lossless] [--metrics_out=FILE]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "stream/trace.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;  // NOLINT(build/namespaces)

  FlagParser flags("TCP load generator for example_analytics_server.");
  flags.AddString("host", "127.0.0.1", "server address");
  flags.AddUint64("port", 7700, "server port");
  flags.AddUint64("connections", 4, "concurrent client connections");
  flags.AddUint64("events", 1000000, "total events across all connections");
  flags.AddUint64("keys", 10000, "distinct keys in the trace");
  flags.AddDouble("skew", 1.0, "Zipf skew");
  flags.AddUint64("batch", 512, "client batch size per frame");
  flags.AddUint64("window", 0, "requested credit window (0 = server default)");
  flags.AddBool("expect_lossless", true,
                "fail if any event lands in the lost_unacked ledger");
  flags.AddString("metrics_out", "",
                  "write the settled countlib_loadgen_* ledgers as a "
                  "Prometheus text dump here (optional)");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }

  const uint64_t connections = flags.GetUint64("connections");
  const uint64_t total_events = flags.GetUint64("events");
  COUNTLIB_CHECK_GE(connections, 1u);

  auto trace = stream::Trace::GenerateZipf(flags.GetUint64("keys"),
                                           flags.GetDouble("skew"),
                                           total_events, /*seed=*/77)
                   .ValueOrDie();
  const auto& events = trace.events();

  net::ClientOptions copt;
  copt.host = flags.GetString("host");
  copt.port = static_cast<uint16_t>(flags.GetUint64("port"));
  copt.max_batch_events = flags.GetUint64("batch");
  copt.requested_window = static_cast<uint32_t>(flags.GetUint64("window"));

  // Each connection replays a round-robin partition of the trace, so every
  // client sees the same key skew (the bench's partitioning idiom).
  std::vector<net::ClientStats> per_conn(connections);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::EventClient::Connect(copt).ValueOrDie();
      for (uint64_t i = c; i < events.size(); i += connections) {
        COUNTLIB_CHECK_OK(client->Submit(events[i].key, events[i].weight));
      }
      COUNTLIB_CHECK_OK(client->Close());
      per_conn[c] = client->Stats();
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  net::ClientStats sum;
  for (const auto& s : per_conn) {
    sum.events_submitted += s.events_submitted;
    sum.events_sent += s.events_sent;
    sum.events_delivered += s.events_delivered;
    sum.events_shed += s.events_shed;
    sum.events_lost_unacked += s.events_lost_unacked;
    sum.events_pending += s.events_pending;
    sum.frames_tx += s.frames_tx;
    sum.frames_rx += s.frames_rx;
    sum.bytes_tx += s.bytes_tx;
    sum.bytes_rx += s.bytes_rx;
    sum.credit_stalls += s.credit_stalls;
    sum.reconnects += s.reconnects;
    sum.decode_errors += s.decode_errors;
  }

  std::printf(
      "analytics_loadgen: %llu events over %llu connections in %.2fs "
      "(%.0f events/s)\n",
      static_cast<unsigned long long>(sum.events_submitted),
      static_cast<unsigned long long>(connections), elapsed,
      elapsed > 0 ? static_cast<double>(sum.events_submitted) / elapsed : 0.0);
  std::printf(
      "analytics_loadgen: delivered=%llu shed=%llu lost=%llu pending=%llu "
      "stalls=%llu reconnects=%llu\n",
      static_cast<unsigned long long>(sum.events_delivered),
      static_cast<unsigned long long>(sum.events_shed),
      static_cast<unsigned long long>(sum.events_lost_unacked),
      static_cast<unsigned long long>(sum.events_pending),
      static_cast<unsigned long long>(sum.credit_stalls),
      static_cast<unsigned long long>(sum.reconnects));

  const std::string metrics_out = flags.GetString("metrics_out");
  if (!metrics_out.empty()) {
    // The settled ledgers as Prometheus counters: registered, snapshotted
    // once, and released — the loadgen has no live series to track, so the
    // dump is a one-shot book report promcheck can gate on.
    obs::Counter submitted, delivered, shed, lost, frames_tx, bytes_tx,
        credit_stalls, reconnects;
    submitted.Add(sum.events_submitted);
    delivered.Add(sum.events_delivered);
    shed.Add(sum.events_shed);
    lost.Add(sum.events_lost_unacked);
    frames_tx.Add(sum.frames_tx);
    bytes_tx.Add(sum.bytes_tx);
    credit_stalls.Add(sum.credit_stalls);
    reconnects.Add(sum.reconnects);
    obs::Registry& reg = obs::Registry::Default();
    const std::vector<obs::Registration> regs = [&] {
      std::vector<obs::Registration> r;
      r.push_back(reg.RegisterCounter("countlib_loadgen_events_submitted_total",
                                      &submitted));
      r.push_back(reg.RegisterCounter("countlib_loadgen_events_delivered_total",
                                      &delivered));
      r.push_back(
          reg.RegisterCounter("countlib_loadgen_events_shed_total", &shed));
      r.push_back(
          reg.RegisterCounter("countlib_loadgen_events_lost_total", &lost));
      r.push_back(reg.RegisterCounter("countlib_loadgen_frames_tx_total",
                                      &frames_tx));
      r.push_back(
          reg.RegisterCounter("countlib_loadgen_bytes_tx_total", &bytes_tx));
      r.push_back(reg.RegisterCounter("countlib_loadgen_credit_stalls_total",
                                      &credit_stalls));
      r.push_back(reg.RegisterCounter("countlib_loadgen_reconnects_total",
                                      &reconnects));
      return r;
    }();
    std::ofstream f(metrics_out);
    f << obs::ToPrometheusText(obs::GlobalSnapshot());
    std::printf("analytics_loadgen: Prometheus ledgers at %s\n",
                metrics_out.c_str());
  }

  // The books: every submitted event must be in exactly one ledger.
  if (sum.events_submitted != sum.events_delivered + sum.events_shed +
                                  sum.events_lost_unacked ||
      sum.events_pending != 0) {
    std::printf("analytics_loadgen: BOOKS VIOLATION\n");
    return 1;
  }
  if (flags.GetBool("expect_lossless") && sum.events_lost_unacked != 0) {
    std::printf("analytics_loadgen: LOST EVENTS on a healthy run\n");
    return 1;
  }
  std::printf("analytics_loadgen: books balance\n");
  return 0;
}
