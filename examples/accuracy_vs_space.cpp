/// \file accuracy_vs_space.cpp
/// \brief Explore the space/accuracy frontier interactively: squeeze each
/// algorithm into a hard bit budget (the Figure-1 exercise) and watch the
/// error respond. Useful for choosing per-counter budgets in a real
/// deployment.
///
///   ./build/examples/accuracy_vs_space [--n=999999] [--trials=400]

#include <cstdio>

#include "core/counter_factory.h"
#include "stats/summary.h"
#include "stream/stream_runner.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("accuracy_vs_space: error vs bit budget per algorithm");
  flags.AddUint64("n", 999999, "count per trial");
  flags.AddUint64("trials", 400, "trials per cell");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const uint64_t n = flags.GetUint64("n");
  const uint64_t trials = flags.GetUint64("trials");

  std::printf("relative-error stddev at n=%llu over %llu trials\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(trials));
  std::printf("%8s | %12s %12s %12s\n", "bits", "morris", "sampling", "csuros");

  for (int bits : {10, 12, 14, 17, 20, 24}) {
    std::printf("%8d |", bits);
    for (CounterKind kind : {CounterKind::kMorris, CounterKind::kSampling,
                             CounterKind::kCsuros}) {
      stream::CounterFactory factory = [kind, bits, n](uint64_t trial) {
        return MakeCounterForBits(kind, bits, n,
                                  1 + trial * 0x9E3779B97F4A7C15ull);
      };
      stream::CountSampler sampler = [n](uint64_t) { return n; };
      auto report_or = stream::RunTrials(factory, sampler, trials);
      if (!report_or.ok()) {
        std::printf(" %12s", "infeasible");
        continue;
      }
      stats::StreamingSummary errs;
      for (double e : report_or->signed_errors) errs.Add(e);
      std::printf(" %11.3f%%", 100.0 * errs.stddev());
    }
    std::printf("\n");
  }
  std::printf("\neach extra bit of budget roughly halves the Morris base "
              "parameter / doubles the sampling budget, cutting the error "
              "stddev by ~1/sqrt(2) — until the register is large enough to "
              "count exactly\n");
  return 0;
}
