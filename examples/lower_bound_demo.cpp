/// \file lower_bound_demo.cpp
/// \brief Watch the Theorem 3.1 lower bound happen: squeeze a Morris
/// counter into a handful of bits, derandomize it the way the proof does
/// (always take the most likely transition), and exhibit two counts — a
/// factor 4+ apart — that land in the same state and therefore get the
/// same answer.
///
///   ./build/examples/lower_bound_demo [--bits=6]

#include <cstdio>

#include "sim/derandomizer.h"
#include "sim/lower_bound.h"
#include "util/cli.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace countlib;

  FlagParser flags("lower_bound_demo: the Section-3 pumping argument, live");
  flags.AddInt64("bits", 6, "state budget S for the counter (4..12)");
  COUNTLIB_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    return 0;
  }
  const int bits = static_cast<int>(flags.GetInt64("bits"));

  auto row_or = sim::PumpMorris(bits, 1u << 20, 0);
  if (!row_or.ok()) {
    std::fprintf(stderr, "no pumping witness: %s\n",
                 row_or.status().ToString().c_str());
    return 1;
  }
  const sim::PumpingRow& row = *row_or;
  const auto& w = row.witness;

  std::printf("A Morris counter squeezed into S = %d bits has %llu states.\n",
              row.state_bits, static_cast<unsigned long long>(row.num_states));
  std::printf("Derandomize it as in the proof of Theorem 3.1: from every "
              "state, always take the most probable transition.\n\n");
  std::printf("Walk the deterministic counter and record states:\n");
  std::printf("  after N1 = %llu increments -> state %llu\n",
              static_cast<unsigned long long>(w.n1),
              static_cast<unsigned long long>(w.state));
  std::printf("  after N2 = %llu increments -> the same state (pigeonhole "
              "within T/2 = %llu counts)\n",
              static_cast<unsigned long long>(w.n2),
              static_cast<unsigned long long>(row.promise_t / 2));
  std::printf("  so the walk is periodic with period %llu from N1 on, and\n",
              static_cast<unsigned long long>(w.period));
  std::printf("  after N3 = %llu increments (in [2T, 4T]) -> the same state "
              "again.\n\n",
              static_cast<unsigned long long>(w.n3));
  std::printf("The counter answers %.6g for BOTH N1 = %llu and N3 = %llu — "
              "counts %.1fx apart.\n",
              w.estimate_small, static_cast<unsigned long long>(w.n1),
              static_cast<unsigned long long>(w.n3),
              static_cast<double>(w.n3) /
                  static_cast<double>(std::max<uint64_t>(1, w.n1)));
  std::printf("Whatever that answer is, its relative error on one of them is "
              ">= %.4f (>= 3/5 always).\n\n",
              row.forced_relative_error);
  std::printf("This is why S >= Omega(min{log n, log log n + log 1/eps + "
              "log log 1/delta}): derandomization costs a factor the failure "
              "probability cannot absorb unless S was already that large "
              "(Theorem 3.1).\n");
  return 0;
}
